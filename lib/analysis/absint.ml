(** Whole-module abstract interpretation over Cage wasm.

    The analyzer walks the structured AST of every function reachable
    from the module entry point, tracking for each abstract value
    (locals + operand stack, fixpoint joins at control-flow merges):

    - {e segment provenance} — which [segment.new]/[segment.set_tag]
      allocation site a pointer came from, and whether it still carries
      its tag bits;
    - {e offset intervals} — a conservative [lo,hi] range for the
      pointer's byte offset into its segment (and for plain integers,
      their value range);
    - {e segment liveness} — per allocation site, whether the segment
      is definitely live, definitely freed, freed on some path, or
      unknown (havocked by an indirect call or an unanalyzable free).

    Calls are analyzed {e per call string} (no summaries): each callee
    is re-run with the caller's abstract arguments, so `malloc(64)`
    inside the analyzed libc yields an exact segment size. Recursion
    and excessive depth fall back to havoc. Loops run a widening
    fixpoint with diagnostics suppressed, then one recording pass over
    the stable head state.

    Two consumers sit on top: {!Lint} (deterministic diagnostics for
    statically-definite UAF, double free, constant OOB, untagged
    accesses and leaked segments) and {!Elide} (per-instruction proofs
    that an access is in-bounds on a definitely-live segment, letting
    the interpreter skip the MTE granule check — see
    {!Wasm.Code.elidable}). *)

module Ast = Wasm.Ast
module Types = Wasm.Types
module Code = Wasm.Code
module IMap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Domain                                                              *)
(* ------------------------------------------------------------------ *)

type site_kind = Heap | Stack

(** An allocation site, keyed by call path + instruction id (heap) or
    call path + frame offset (stack slot). Mutable flags accumulate
    facts across the whole analysis. *)
type site = {
  s_id : int;
  s_key : string;
  s_kind : site_kind;
  s_path : string;  (** call path of the function that allocated it *)
  s_instr : int;  (** allocating instruction id (diagnostics) *)
  s_lidx : int;  (** local function index of the allocating instruction
                     (-1 when unknown); arena lowering is per
                     (function, instruction) *)
  mutable s_size : Interval.t;  (** segment length in bytes *)
  mutable s_multi : bool;
      (** a [segment.new] re-executed while the site was already live
          (loop allocation): several concrete segments share this
          abstract site, so "definite" claims degrade to "possible"
          and elision is off *)
  mutable s_escaped : bool;  (** pointer stored to memory / host call *)
  mutable s_escaped_dead : bool;
      (** only an {e untagged} address escaped, and only while the
          segment was definitely freed (the allocator threading a dead
          chunk onto its free list). After [segment.free] the payload
          granules read as tag zero whether or not the site was
          arena-lowered, so such an escape cannot observe the missing
          tag writes — unless the site is later re-allocated
          ([s_reincarnated]) while the stale address is still abroad *)
  mutable s_reincarnated : bool;
      (** a [segment.new] re-executed after the site was freed: a new
          concrete segment under the same abstract site. Harmless on
          its own, but combined with [s_escaped_dead] a stale dead
          address may alias the new incarnation's live granules *)
  mutable s_leaked_reported : bool;
  mutable s_arena_unsafe : bool;
      (** the segment's tag bits may ride on a value the analysis lost
          track of (joined away, laundered through arithmetic, stored,
          retagged, or handed to a summarized callee that dereferences
          it): a checked access could then consult the tag plane, so
          the site must keep its real tag writes ({!Escape}) *)
  mutable s_accesses : (int * int) list;
      (** (local function, instruction id) of every scalar access made
          through this site's provenance — arena eligibility demands
          each one be elided under the active elision plan *)
  mutable s_unproven_access : bool;
      (** some access through this provenance cannot be elided at
          runtime (a bulk op, or an access in a blacklisted function):
          disqualifies the site from arena lowering *)
}

(** Per-site liveness; a missing map entry is bottom (never allocated
    on this path). *)
type liveness = Live | Freed | MaybeFreed | UnknownLive

let join_liveness a b =
  match (a, b) with
  | UnknownLive, _ | _, UnknownLive -> UnknownLive
  | Live, Live -> Live
  | Freed, Freed -> Freed
  | _ -> MaybeFreed

(** One comparison operand: optional local provenance + value range. *)
type operand = int option * Interval.t

(** Abstract values. *)
type aval =
  | Top
  | Int of Interval.t  (** plain number *)
  | Loc of int * Interval.t
      (** number read from a local (stack-only; branch refinement
          writes the narrowed range back into the local) *)
  | Ptr of { site : site; off : Interval.t; tagged : bool }
  | Sp of int * Interval.t  (** untagged stack pointer: id + offset *)
  | TagVal of site option  (** a value with only tag bits (low 48 zero) *)
  | TaggedSp of int * int64
      (** stack slot address with tag bits or'ed in, awaiting its
          [segment.set_tag] (sp id + singleton frame offset) *)
  | Cmp of cmp  (** boolean result of a comparison, pre-branch *)

and cmp = {
  cw : Ast.width;
  cop : Ast.irelop;
  cneg : bool;  (** an odd number of [eqz] applied on top *)
  clhs : operand;
  crhs : operand;
}

type state = {
  locals : aval array;
  stack : aval list;
  g0 : aval;  (** the stack-pointer global *)
  live : liveness IMap.t;
}

type severity = Definite | Possible

type diag = {
  d_path : string;  (** call path, e.g. ["main#12>memset"] *)
  d_instr : int;  (** basic-instruction id within the function *)
  d_severity : severity;
  d_msg : string;
}

(* ------------------------------------------------------------------ *)
(* Value lattice                                                       *)
(* ------------------------------------------------------------------ *)

let iv_of = function
  | Int iv | Loc (_, iv) -> Some iv
  | Cmp _ -> Some Interval.bool_
  | _ -> None

let operand_equal (a, x) (b, y) = a = b && Interval.equal x y

let cmp_equal a b =
  a.cw = b.cw && a.cop = b.cop && a.cneg = b.cneg
  && operand_equal a.clhs b.clhs
  && operand_equal a.crhs b.crhs

let aval_equal a b =
  match (a, b) with
  | Top, Top -> true
  | Int x, Int y -> Interval.equal x y
  | Loc (i, x), Loc (j, y) -> i = j && Interval.equal x y
  | Ptr p, Ptr q ->
      p.site == q.site && Interval.equal p.off q.off && p.tagged = q.tagged
  | Sp (i, x), Sp (j, y) -> i = j && Interval.equal x y
  | TagVal a, TagVal b -> (
      match (a, b) with
      | None, None -> true
      | Some s, Some t -> s == t
      | _ -> false)
  | TaggedSp (i, x), TaggedSp (j, y) -> i = j && Int64.equal x y
  | Cmp a, Cmp b -> cmp_equal a b
  | _ -> false

(* A tagged pointer (or an extracted tag value) merged into a value
   that no longer names its site can still carry the tag bits at
   runtime; a later checked access through such a value consults the
   tag plane, so the site must keep its real tag writes (see
   {!Escape}). *)
let arena_taint_aval = function
  | Ptr { site; tagged = true; _ } -> site.s_arena_unsafe <- true
  | TagVal (Some site) -> site.s_arena_unsafe <- true
  | _ -> ()

let join_aval a b =
  if aval_equal a b then a
  else
    match (a, b) with
    | Int x, Int y -> Int (Interval.join x y)
    | Loc (i, x), Loc (j, y) when i = j -> Loc (i, Interval.join x y)
    | (Int x | Loc (_, x)), (Int y | Loc (_, y)) -> Int (Interval.join x y)
    | Ptr p, Ptr q when p.site == q.site ->
        if p.tagged <> q.tagged then p.site.s_arena_unsafe <- true;
        Ptr
          {
            site = p.site;
            off = Interval.join p.off q.off;
            tagged = p.tagged && q.tagged;
          }
    (* assume-allocation-success: malloc's [return 0] failure arm joins
       into the pointer, not the other way round — the OOM path is dead
       in every workload and keeping provenance is what makes the
       analysis useful. The runtime still traps if it ever happens. *)
    | Ptr p, Int z when Interval.is_const 0L z -> Ptr p
    | Int z, Ptr p when Interval.is_const 0L z -> Ptr p
    | Sp (i, x), Sp (j, y) when i = j -> Sp (i, Interval.join x y)
    | TagVal _, TagVal _ ->
        arena_taint_aval a;
        arena_taint_aval b;
        TagVal None
    | (Cmp _ | Int _ | Loc _), (Cmp _ | Int _ | Loc _) ->
        Int
          (Interval.join
             (match iv_of a with Some v -> v | None -> Interval.top)
             (match iv_of b with Some v -> v | None -> Interval.top))
    | _ ->
        arena_taint_aval a;
        arena_taint_aval b;
        Top

let widen_aval ~prev ~next =
  match (prev, next) with
  | Int p, Int n -> Int (Interval.widen ~prev:p ~next:n)
  | Loc (i, p), Loc (j, n) when i = j -> Loc (i, Interval.widen ~prev:p ~next:n)
  | Ptr p, Ptr n when p.site == n.site ->
      Ptr { n with off = Interval.widen ~prev:p.off ~next:n.off }
  | Sp (i, p), Sp (j, n) when i = j -> Sp (i, Interval.widen ~prev:p ~next:n)
  | _ ->
      arena_taint_aval prev;
      next

let join_live_map a b =
  IMap.union (fun _ x y -> Some (join_liveness x y)) a b

let join_state a b =
  {
    locals = Array.map2 join_aval a.locals b.locals;
    stack =
      (* joined states always carry stacks of equal shape (same label) *)
      (try List.map2 join_aval a.stack b.stack with Invalid_argument _ -> []);
    g0 = join_aval a.g0 b.g0;
    live = join_live_map a.live b.live;
  }

let widen_state ~prev ~next =
  {
    locals = Array.map2 (fun p n -> widen_aval ~prev:p ~next:n) prev.locals next.locals;
    stack = next.stack;
    g0 = widen_aval ~prev:prev.g0 ~next:next.g0;
    live = next.live;
  }

let state_equal a b =
  (try Array.for_all2 aval_equal a.locals b.locals
   with Invalid_argument _ -> false)
  && List.length a.stack = List.length b.stack
  && List.for_all2 aval_equal a.stack b.stack
  && aval_equal a.g0 b.g0
  && IMap.equal ( = ) a.live b.live

(* ------------------------------------------------------------------ *)
(* Local scrubbing and branch refinement                               *)
(* ------------------------------------------------------------------ *)

(* Writing local [j] invalidates every stack/local value that named it:
   [Loc] provenance becomes a plain interval, comparisons naming it
   degrade to an unknown boolean. *)
let scrub_local st j =
  let names_j (n, _) = n = Some j in
  let fix = function
    | Loc (i, iv) when i = j -> Int iv
    | Cmp c when names_j c.clhs || names_j c.crhs -> Int Interval.bool_
    | v -> v
  in
  {
    st with
    locals = Array.map fix st.locals;
    stack = List.map fix st.stack;
    g0 = fix st.g0;
  }

let negate_op : Ast.irelop -> Ast.irelop = function
  | Eq -> Ne
  | Ne -> Eq
  | LtS -> GeS
  | LtU -> GeU
  | GtS -> LeS
  | GtU -> LeU
  | LeS -> GtS
  | LeU -> GtU
  | GeS -> LtS
  | GeU -> LtU

let swap_op : Ast.irelop -> Ast.irelop = function
  | Eq -> Eq
  | Ne -> Ne
  | LtS -> GtS
  | LtU -> GtU
  | GtS -> LtS
  | GtU -> LtU
  | LeS -> GeS
  | LeU -> GeU
  | GeS -> LeS
  | GeU -> LeU

(* The interval [x] must lie in when [x op r] holds, for r ranging over
   [riv]. Unsigned shapes are only refined where the signed-int64
   representation makes them sound. *)
let constraint_of (op : Ast.irelop) (riv : Interval.t) : Interval.t =
  let open Interval in
  (* saturating: stepping past max_int/min_int must widen to infinity,
     not wrap around into a tiny (unsound) bound *)
  let dec = function Some v -> Interval.pred_sat v | None -> None in
  let inc = function Some v -> Interval.succ_sat v | None -> None in
  match op with
  | Eq -> riv
  | Ne -> top
  | LtS -> of_bounds None (dec riv.hi)
  | LeS -> of_bounds None riv.hi
  | GtS -> of_bounds (inc riv.lo) None
  | GeS -> of_bounds riv.lo None
  | LtU when is_nonneg riv && hi_finite riv -> of_bounds (Some 0L) (dec riv.hi)
  | LeU when is_nonneg riv && hi_finite riv -> of_bounds (Some 0L) riv.hi
  | LtU | LeU | GtU | GeU -> top

(* Meet [c] into whatever numeric value local [i] currently holds;
   [None] = contradiction, the branch is unreachable. *)
let refine_local st i c =
  match st.locals.(i) with
  | Int iv | Loc (_, iv) -> (
      match Interval.meet iv c with
      | None -> None
      | Some iv' ->
          let locals = Array.copy st.locals in
          locals.(i) <- Int iv';
          Some { st with locals })
  | _ -> Some st

let refine_side st op ((name, iv) : operand) ((_, riv) : operand) =
  let c = constraint_of op riv in
  match Interval.meet iv c with
  | None -> None
  | Some _ -> ( match name with Some i -> refine_local st i c | None -> Some st)

let refine_cmp st (c : cmp) truth =
  let holds = truth <> c.cneg in
  let op = if holds then c.cop else negate_op c.cop in
  match refine_side st op c.clhs c.crhs with
  | None -> None
  | Some st -> refine_side st (swap_op op) c.crhs c.clhs

(** Refine [st] under the assumption that condition value [cond] is
    true ([truth]) or false; [None] = branch unreachable.

    [spec] is the Swivel-style speculation model: inside a
    bounds-check-bypass window a mispredicted branch executes either
    arm regardless of the condition, so refinement performs no
    narrowing and prunes no path — every branch-derived fact the
    architectural analysis relied on evaporates. *)
let refine ?(spec = false) cond truth st =
  if spec then Some st
  else
  match cond with
  | Cmp c -> refine_cmp st c truth
  | Ptr _ | Sp _ | TaggedSp _ -> if truth then Some st else None
  | Int iv | Loc (_, iv) -> (
      let upd name iv' =
        match name with
        | Some i -> refine_local st i iv'
        | None -> Some st
      in
      let name = match cond with Loc (i, _) -> Some i | _ -> None in
      if truth then
        if Interval.is_const 0L iv then None
        else if Interval.lo_ge iv 0L then
          upd name { iv with lo = Some (Int64.max 1L (Option.value iv.lo ~default:1L)) }
        else Some st
      else
        match Interval.meet iv (Interval.const 0L) with
        | None -> None
        | Some z -> upd name z)
  | _ -> Some st

(* ------------------------------------------------------------------ *)
(* Prepared node trees                                                 *)
(* ------------------------------------------------------------------ *)

(* A mirror of {!Wasm.Code.prepare}'s numbering over the source AST:
   only non-control instructions get ids, assigned in preorder (list
   order, block/loop bodies recursed, if-then before if-else). Keeping
   the numbering identical is what lets a verdict for id [n] here
   select instruction [Basic (_, n)] there. *)
type node =
  | NB of Ast.instr * int
  | NBlock of int * node array
  | NLoop of int * node array  (** fallthrough arity (branch arity is 0) *)
  | NIf of int * node array * node array
  | NBr of int
  | NBrIf of int
  | NBrTable of int list * int
  | NReturn

let rec build_block next (instrs : Ast.instr list) : node array =
  let rec go acc = function
    | [] -> Array.of_list (List.rev acc)
    | i :: rest -> go (build_instr next i :: acc) rest
  in
  go [] instrs

and build_instr next : Ast.instr -> node = function
  | Ast.Block (bt, body) -> NBlock (Code.block_arity bt, build_block next body)
  | Ast.Loop (bt, body) -> NLoop (Code.block_arity bt, build_block next body)
  | Ast.If (bt, then_, else_) ->
      let a = Code.block_arity bt in
      let then_ = build_block next then_ in
      NIf (a, then_, build_block next else_)
  | Ast.Br n -> NBr n
  | Ast.BrIf n -> NBrIf n
  | Ast.BrTable (ts, d) -> NBrTable (ts, d)
  | Ast.Return -> NReturn
  | i ->
      let id = !next in
      incr next;
      NB (i, id)

(* ------------------------------------------------------------------ *)
(* Global analysis environment                                         *)
(* ------------------------------------------------------------------ *)

type genv = {
  m : Ast.module_;
  n_imports : int;
  funcs : Ast.func array;
  ftypes : Types.func_type array;  (** per local function *)
  nodes : node array array;
  nbasic : int array;
  blacklist : bool array;
      (** local functions reachable from the indirect-call table: their
          prepared bodies may run in instances we did not analyze from
          [main], so no elision verdicts are recorded for them *)
  verdicts : int array array;  (** 0 unvisited, 1 proven, 2 unproven *)
  bverdicts : int array array;
      (** parallel bounds verdicts: the access interval is proven
          inside linear memory (a strictly weaker claim than the tag
          verdict — a segment lives entirely inside memory at creation
          and memory never shrinks, so tag-proven implies
          bounds-proven) *)
  cg : Callgraph.t;
  summaries : Summary.t array;
      (** interprocedural per-function summaries, consulted where
          call-string inlining gives up (recursion, the depth cap,
          [call_indirect]) instead of the old blanket havoc *)
  frees : (int * int, site list ref * bool ref) Hashtbl.t;
      (** per (local function, instruction id) [segment.free] record:
          every site the instruction can free, and a dirty bit set
          when any operand was untracked, possibly-dead or multi —
          {!Escape}'s unit of arena lowering *)
  spec : bool;  (** run under the speculation model (see {!refine}) *)
  sites : (string, site) Hashtbl.t;
  mutable all_sites : site list;
  mutable site_count : int;
  mutable sp_count : int;
  mutable diags : diag list;
  diag_seen : (string * int * string, unit) Hashtbl.t;
  mutable recording : bool;
      (** cleared during loop stabilization passes so only the final
          recording pass emits diagnostics *)
}

type fenv = {
  g : genv;
  path : string;
  verdict_row : int array;  (** [[||]] when the function is blacklisted *)
  bverdict_row : int array;  (** parallel bounds row, same blacklisting *)
  active : int list;  (** function indices on the analysis call stack *)
  depth : int;
}

(* The function currently being analyzed: [analyze] seeds [active] with
   the entry and every inlined call pushes its callee, so the head is
   always the enclosing function. *)
let cur_lidx fenv =
  match fenv.active with f :: _ -> f - fenv.g.n_imports | [] -> -1

let func_name g fidx =
  if fidx < g.n_imports then (List.nth g.m.Ast.imports fidx).Ast.im_name
  else
    match g.funcs.(fidx - g.n_imports).Ast.fname with
    | Some n -> n
    | None -> Printf.sprintf "f%d" fidx

(* Static call edges, for the table-reachability blacklist. *)
let rec direct_callees acc (is_ : Ast.instr list) =
  List.fold_left
    (fun acc (i : Ast.instr) ->
      match i with
      | Ast.Call f -> f :: acc
      | Ast.Block (_, b) | Ast.Loop (_, b) -> direct_callees acc b
      | Ast.If (_, t, e) -> direct_callees (direct_callees acc t) e
      | _ -> acc)
    acc is_

let compute_blacklist (m : Ast.module_) funcs n_imports =
  let n = Array.length funcs in
  let bl = Array.make n false in
  let rec visit fidx =
    let l = fidx - n_imports in
    if l >= 0 && l < n && not bl.(l) then begin
      bl.(l) <- true;
      List.iter visit (direct_callees [] funcs.(l).Ast.body)
    end
  in
  List.iter (fun (e : Ast.elem) -> List.iter visit e.e_funcs) m.elems;
  bl

(* ------------------------------------------------------------------ *)
(* Sites, diagnostics, verdicts                                        *)
(* ------------------------------------------------------------------ *)

let find_site g ~key ~kind ~path ~instr ~lidx ~size =
  match Hashtbl.find_opt g.sites key with
  | Some s ->
      s.s_size <- Interval.join s.s_size size;
      s
  | None ->
      let s =
        {
          s_id = g.site_count;
          s_key = key;
          s_kind = kind;
          s_path = path;
          s_instr = instr;
          s_lidx = lidx;
          s_size = size;
          s_multi = false;
          s_escaped = false;
          s_escaped_dead = false;
          s_reincarnated = false;
          s_leaked_reported = false;
          s_arena_unsafe = false;
          s_accesses = [];
          s_unproven_access = false;
        }
      in
      g.site_count <- g.site_count + 1;
      Hashtbl.add g.sites key s;
      g.all_sites <- s :: g.all_sites;
      s

let diag fenv ~id ~severity msg =
  let g = fenv.g in
  if g.recording then begin
    let key = (fenv.path, id, msg) in
    if not (Hashtbl.mem g.diag_seen key) then begin
      Hashtbl.add g.diag_seen key ();
      g.diags <-
        { d_path = fenv.path; d_instr = id; d_severity = severity; d_msg = msg }
        :: g.diags
    end
  end

(* Verdict meet: unvisited takes the new value, and unproven (2)
   dominates proven (1) — an access is elidable only if every analyzed
   context proves it. *)
let mark_row row id proven =
  if id >= 0 && id < Array.length row then begin
    let v = if proven then 1 else 2 in
    row.(id) <- (if row.(id) = 0 then v else max row.(id) v)
  end

let mark_verdict fenv id proven = mark_row fenv.verdict_row id proven
let mark_bverdict fenv id proven = mark_row fenv.bverdict_row id proven

let liveness_of st (site : site) =
  match IMap.find_opt site.s_id st.live with
  | Some l -> l
  | None -> UnknownLive

(* [?live] refines the escape: an untagged address stored while its
   segment is definitely freed (the allocator pushing a dead chunk
   onto the free list) is recorded as a dead escape, which blocks
   arena lowering only if the site is later re-allocated. Call sites
   without liveness at hand (host calls, summarized callees) stay
   maximally conservative. *)
let escape_site ?live v =
  match v with
  | Ptr { site; tagged; _ } -> (
      match live with
      | Some st
        when (not tagged) && (not site.s_multi)
             && liveness_of st site = Freed ->
          site.s_escaped_dead <- true
      | _ -> site.s_escaped <- true)
  | _ -> ()

let sev_of site = if site.s_multi then Possible else Definite

(* The access oracle: diagnostics + the elision verdict for one memory
   access of [len] bytes at [addr] (the effective address value, with
   the memarg constant offset already folded into pointer offsets by
   the caller). [elide_ok] is true only for scalar loads/stores. *)
let check_access fenv st ~id ~addr ~(len : Interval.t) ~is_store ~elide_ok =
  let what = if is_store then "store" else "load" in
  let proven = ref false in
  let bproven = ref false in
  (match addr with
  | Ptr { site; off = eff; tagged } -> (
      let live = liveness_of st site in
      let size = site.s_size in
      (* the allocator's own chunk-header accesses sit just below the
         payload, untagged — silent for both bounds and liveness (free
         legitimately touches the header after segment.free) *)
      let header_access =
        (not tagged)
        && (match eff.hi with Some h -> h < 0L | None -> false)
      in
      (* use-after-free *)
      (match live with
      | _ when header_access -> ()
      | Freed ->
          diag fenv ~id ~severity:(sev_of site)
            (Printf.sprintf "%s through freed segment %s" what site.s_key)
      | MaybeFreed ->
          diag fenv ~id ~severity:Possible
            (Printf.sprintf "%s through segment %s freed on some path" what
               site.s_key)
      | Live | UnknownLive -> ());
      (* bounds *)
      let open Interval in
      let len_lo = Option.value len.lo ~default:0L in
      let definite_over =
        match (eff.lo, size.hi) with
        | Some lo, Some sh ->
            len_lo > 0L
            && (match Interval.add_exact lo len_lo with
               | Some e -> e > sh
               | None -> true)
        | _ -> false
      in
      let definite_under =
        tagged && (match eff.hi with Some h -> h < 0L | None -> false)
      in
      let possible_oob =
        (* requires a finite nonnegative range: an unbounded-below
           offset must not masquerade as a near-miss *)
        (not definite_over) && (not definite_under)
        && is_nonneg eff
        && hi_finite eff
        &&
        match (eff.hi, len.hi, size.lo) with
        | Some h, Some lh, Some sl ->
            lh > 0L
            && (match Interval.add_exact h lh with
               | Some e -> e > sl
               | None -> true)
        (* unknown length stays silent: bulk ops with dynamic sizes
           (realloc's copy) would otherwise flag everywhere *)
        | _ -> false
      in
      if definite_over then
        diag fenv ~id ~severity:(sev_of site)
          (Printf.sprintf "%s out of bounds: offset %s past end of %s (%s bytes)"
             what (Interval.to_string eff) site.s_key
             (Interval.to_string size))
      else if definite_under then
        diag fenv ~id ~severity:(sev_of site)
          (Printf.sprintf "%s out of bounds: offset %s before start of %s" what
             (Interval.to_string eff) site.s_key)
      else if possible_oob then
        diag fenv ~id ~severity:Possible
          (Printf.sprintf "%s may run past end of %s: offset %s + %s > %s bytes"
             what site.s_key (Interval.to_string eff) (Interval.to_string len)
             (Interval.to_string size));
      (* untagged pointer into a checked (tagged) segment: silent for
         negative offsets — the allocator's own header accesses sit
         just below the payload by design *)
      (match eff.hi with
      | _ when tagged -> ()
      | Some h when h < 0L -> ()
      | _ ->
          diag fenv ~id ~severity:Possible
            (Printf.sprintf "%s through untagged pointer into tagged segment %s"
               what site.s_key));
      (* bounds elision: the access interval proven inside the segment.
         A segment that was successfully created lies entirely within
         linear memory (segment.new validates and zero-fills it) and
         memory never shrinks, so in-segment implies in-memory — no
         tag, liveness or multiplicity requirement. *)
      bproven :=
        is_nonneg eff && hi_finite eff
        && (match (eff.hi, len.hi, size.lo) with
           | Some h, Some lh, Some sl -> (
               match Interval.add_exact h lh with
               | Some e -> e <= sl
               | None -> false)
           | _ -> false);
      (* tag elision additionally needs: tagged, single concrete
         segment, definitely live. Tag-proven thus implies
         bounds-proven by construction — the runtime needs only three
         access paths (checked / tag-elided / fully-elided). *)
      proven := !bproven && tagged && (not site.s_multi) && live = Live;
      (* arena bookkeeping: every access through this provenance must
         itself be elided for the site's tag writes to be skippable.
         Exception: an untagged access wholly below the payload (the
         allocator reading a chunk header) touches only granules that
         [segment.new] never tags, so it cannot observe — and does not
         constrain — arena lowering. *)
      let arena_neutral =
        header_access
        && (match (eff.hi, len.hi) with
           | Some h, Some lh -> (
               match Interval.add_exact h lh with
               | Some e -> e <= 0L
               | None -> false)
           | _ -> false)
      in
      if fenv.g.recording && not arena_neutral then begin
        if elide_ok && Array.length fenv.verdict_row > 0 then begin
          let acc = (cur_lidx fenv, id) in
          if not (List.mem acc site.s_accesses) then
            site.s_accesses <- acc :: site.s_accesses
        end
        else site.s_unproven_access <- true
      end)
  | _ -> ());
  if elide_ok then begin
    mark_verdict fenv id !proven;
    mark_bverdict fenv id !bproven
  end

(* ------------------------------------------------------------------ *)
(* Stack / state helpers                                               *)
(* ------------------------------------------------------------------ *)

let push v st = { st with stack = v :: st.stack }

let pop st =
  match st.stack with
  | v :: rest -> (v, { st with stack = rest })
  | [] -> (Top, st)

(* First popped value first in the result (i.e. stack order, top first). *)
let popn st n =
  let rec go acc st n = if n = 0 then (List.rev acc, st) else
    let v, st = pop st in go (v :: acc) st (n - 1)
  in
  go [] st n

let push_n v n st =
  { st with stack = List.init n (fun _ -> v) @ st.stack }

let take n stack =
  List.init n (fun i -> match List.nth_opt stack i with Some v -> v | None -> Top)

let set_local st l v =
  let locals = Array.copy st.locals in
  if l < Array.length locals then locals.(l) <- v;
  { st with locals }

let get_local st l = if l < Array.length st.locals then st.locals.(l) else Top

(* Values crossing a statement boundary: local provenance and pending
   comparisons only make sense on the pushing function's stack. *)
let demote = function Loc (_, iv) -> Int iv | v -> v
let demote_cross = function
  | Loc (_, iv) -> Int iv
  | Cmp _ -> Int Interval.bool_
  | v -> v

let havoc_live live =
  IMap.map (function Freed -> Freed | _ -> UnknownLive) live

let coarsen_state st =
  let c = function
    | Int _ | Loc _ | Cmp _ -> Int Interval.top
    | Ptr p -> Ptr { p with off = Interval.top }
    | Sp (i, _) -> Sp (i, Interval.top)
    | v -> v
  in
  {
    locals = Array.map c st.locals;
    stack = List.map c st.stack;
    g0 = c st.g0;
    live = havoc_live st.live;
  }

let access_len ty (pack : Ast.pack_size option) =
  match (pack, ty) with
  | Some Ast.Pack8, _ -> 1L
  | Some Ast.Pack16, _ -> 2L
  | Some Ast.Pack32, _ -> 4L
  | None, (Types.I32 | Types.F32) -> 4L
  | None, (Types.I64 | Types.F64) -> 8L

(* Fold a constant byte displacement (the memarg offset) into a value. *)
let addr_plus v (o : int64) =
  if Int64.equal o 0L then v
  else
    let c = Interval.const o in
    match v with
    | Ptr p -> Ptr { p with off = Interval.add p.off c }
    | Sp (i, off) -> Sp (i, Interval.add off c)
    | Int iv -> Int (Interval.add iv c)
    | Loc (_, iv) -> Int (Interval.add iv c)
    | v -> v

let low48_zero c =
  Int64.equal (Int64.logand c 0xFFFF_FFFF_FFFFL) 0L && not (Int64.equal c 0L)

let untag_mask = 0xFFFF_FFFF_FFFFL

type frame = { f_arity : int; mutable f_pend : (aval list * state) option }

let join_exit a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, sa), Some (vb, sb) ->
      Some (List.map2 join_aval va vb, join_state sa sb)

let branch_join frames k st =
  match List.nth_opt frames k with
  | None -> ()
  | Some fr ->
      let vals = take fr.f_arity st.stack in
      fr.f_pend <- join_exit fr.f_pend (Some (vals, { st with stack = [] }))

let stack_key path o = Printf.sprintf "%s@stack%Ld" path o
let heap_key path id = Printf.sprintf "%s@heap#%d" path id

(* Integer binops: interval arithmetic on numbers, offset arithmetic on
   pointers, and the three codegen idioms that manipulate tag bits
   (add a tag increment, mask the tag nibble out or in). *)
let eval_ibinop st (w : Ast.width) (op : Ast.ibinop) =
  let b, st = pop st in
  let a, st = pop st in
  let clamp iv = match w with Ast.W32 -> Interval.clamp32 iv | Ast.W64 -> iv in
  let num f =
    match (iv_of a, iv_of b) with
    | Some x, Some y -> Int (clamp (f x y))
    | _ -> Top
  in
  let r =
    match op with
    | Ast.Add -> (
        match (a, b) with
        | Ptr p, (Int iv | Loc (_, iv)) | (Int iv | Loc (_, iv)), Ptr p -> (
            match Interval.singleton iv with
            | Some c when low48_zero c -> Ptr p (* tag-bits arithmetic *)
            | _ -> Ptr { p with off = Interval.add p.off iv })
        | Sp (sid, off), (Int iv | Loc (_, iv))
        | (Int iv | Loc (_, iv)), Sp (sid, off) ->
            Sp (sid, Interval.add off iv)
        | _ -> num Interval.add)
    | Ast.Sub -> (
        match (a, b) with
        | Ptr p, (Int iv | Loc (_, iv)) ->
            Ptr { p with off = Interval.sub p.off iv }
        | Sp (sid, off), (Int iv | Loc (_, iv)) ->
            Sp (sid, Interval.sub off iv)
        | Ptr p, Ptr q when p.site == q.site ->
            Int (clamp (Interval.sub p.off q.off))
        | Sp (i1, o1), Sp (i2, o2) when i1 = i2 ->
            Int (clamp (Interval.sub o1 o2))
        | _ -> num Interval.sub)
    | Ast.Mul -> num Interval.mul
    | Ast.DivS | Ast.DivU -> num Interval.div_s
    | Ast.RemS -> num Interval.rem_s
    | Ast.RemU -> num Interval.rem_u
    | Ast.And -> (
        match (a, b) with
        | Ptr p, (Int iv | Loc (_, iv)) | (Int iv | Loc (_, iv)), Ptr p -> (
            match Interval.singleton iv with
            | Some m when Int64.equal m untag_mask ->
                Ptr { p with tagged = false }
            | Some m when low48_zero m -> TagVal (Some p.site)
            | _ -> Top)
        | TaggedSp (sid, o), (Int iv | Loc (_, iv))
        | (Int iv | Loc (_, iv)), TaggedSp (sid, o) -> (
            match Interval.singleton iv with
            | Some m when Int64.equal m untag_mask ->
                Sp (sid, Interval.const o)
            | Some m when low48_zero m -> TagVal None
            | _ -> Top)
        | _ -> num Interval.logand)
    | Ast.Or -> (
        match (a, b) with
        | Sp (sid, off), TagVal _ | TagVal _, Sp (sid, off) -> (
            match Interval.singleton off with
            | Some o -> TaggedSp (sid, o)
            | None -> Top)
        | Ptr p, TagVal _ | TagVal _, Ptr p -> Ptr { p with tagged = true }
        | _ -> num Interval.logor)
    | Ast.Xor -> num Interval.logxor
    | Ast.Shl -> num Interval.shl
    | Ast.ShrS -> num Interval.shr_s
    | Ast.ShrU -> num Interval.shr_u
    | Ast.Rotl | Ast.Rotr -> num (fun _ _ -> Interval.top)
  in
  (* Tag-taint: if an operand carried live tag bits (a tagged pointer,
     or a tag nibble extracted from one) and the result no longer
     names the site, the tag may survive in a value the analysis can
     no longer see — the site must keep its real tag-plane writes. *)
  let lost v =
    match v with
    | Ptr { site; tagged = true; _ } -> (
        match r with
        | Ptr { site = s; _ } when s == site -> ()
        | TagVal (Some s) when s == site -> ()
        | _ -> site.s_arena_unsafe <- true)
    | TagVal (Some site) -> (
        match r with
        | Ptr { site = s; tagged = true; _ } when s == site -> ()
        | TagVal (Some s) when s == site -> ()
        | _ -> site.s_arena_unsafe <- true)
    | _ -> ()
  in
  lost a;
  lost b;
  push r st

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

(* [eval_seq] threads an optional state through a node sequence; [None]
   means the abstract path is unreachable (trapped, branched away). *)
let rec eval_seq fenv frames st nodes =
  let n = Array.length nodes in
  let rec go i st =
    if i >= n then Some st
    else
      match eval_node fenv frames st nodes.(i) with
      | None -> None
      | Some st' -> go (i + 1) st'
  in
  go 0 st

and eval_node fenv frames st node =
  match node with
  | NB (i, id) -> eval_basic fenv st i id
  | NBlock (a, body) ->
      let saved = st.stack in
      let frame = { f_arity = a; f_pend = None } in
      let ft = eval_seq fenv (frame :: frames) { st with stack = [] } body in
      let fall =
        Option.map (fun s -> (take a s.stack, { s with stack = [] })) ft
      in
      (match join_exit fall frame.f_pend with
      | None -> None
      | Some (vals, s) -> Some { s with stack = vals @ saved })
  | NIf (a, then_, else_) ->
      let cond, st = pop st in
      let saved = st.stack in
      let frame = { f_arity = a; f_pend = None } in
      let run body = function
        | None -> None
        | Some s ->
            Option.map
              (fun s' -> (take a s'.stack, { s' with stack = [] }))
              (eval_seq fenv (frame :: frames) { s with stack = [] } body)
      in
      let rt = run then_ (refine ~spec:fenv.g.spec cond true st) in
      let re = run else_ (refine ~spec:fenv.g.spec cond false st) in
      (match join_exit (join_exit rt re) frame.f_pend with
      | None -> None
      | Some (vals, s) -> Some { s with stack = vals @ saved })
  | NLoop (a, body) ->
      let g = fenv.g in
      let saved = st.stack in
      let frame = { f_arity = 0; f_pend = None } in
      let was_recording = g.recording in
      g.recording <- false;
      (* phase 1: widening fixpoint over the loop head, diagnostics
         suppressed (site flags and elision verdicts still accumulate,
         which is sound: verdict marking is a meet) *)
      let rec stabilize head iter =
        frame.f_pend <- None;
        ignore (eval_seq fenv (frame :: frames) head body);
        match frame.f_pend with
        | None -> head
        | Some (_, back) ->
            let j = join_state head back in
            let next =
              if iter >= 3 then widen_state ~prev:head ~next:j else j
            in
            if state_equal next head then head
            else if iter > 60 then coarsen_state next
            else stabilize next (iter + 1)
      in
      let stable = stabilize { st with stack = [] } 0 in
      g.recording <- was_recording;
      (* phase 2: one recording pass over the stable head *)
      frame.f_pend <- None;
      (match eval_seq fenv (frame :: frames) stable body with
      | None -> None (* the loop only exits through outer branches *)
      | Some s -> Some { s with stack = take a s.stack @ saved })
  | NBr k ->
      branch_join frames k st;
      None
  | NBrIf k ->
      let cond, st = pop st in
      (match refine ~spec:fenv.g.spec cond true st with
      | Some s -> branch_join frames k s
      | None -> ());
      refine ~spec:fenv.g.spec cond false st
  | NBrTable (ts, d) ->
      let _, st = pop st in
      List.iter (fun k -> branch_join frames k st) (d :: ts);
      None
  | NReturn ->
      branch_join frames (List.length frames - 1) st;
      None

and eval_basic fenv st (i : Ast.instr) (id : int) : state option =
  match i with
  | Ast.Unreachable -> None
  | Ast.Nop -> Some st
  | Ast.Block _ | Ast.Loop _ | Ast.If _ | Ast.Br _ | Ast.BrIf _
  | Ast.BrTable _ | Ast.Return ->
      Some st (* control nodes never reach eval_basic *)
  | Ast.Drop ->
      let _, st = pop st in
      Some st
  | Ast.Select ->
      let c, st = pop st in
      let v2, st = pop st in
      let v1, st = pop st in
      let chosen =
        match c with
        | Int iv when Interval.is_const 0L iv -> v2
        | Int iv when not (Interval.mem 0L iv) -> v1
        | Ptr _ | Sp _ | TaggedSp _ -> v1
        | _ -> join_aval v1 v2
      in
      Some (push chosen st)
  | Ast.LocalGet l ->
      let v =
        match get_local st l with Int iv -> Loc (l, iv) | v -> v
      in
      Some (push v st)
  | Ast.LocalSet l ->
      let v, st = pop st in
      Some (set_local (scrub_local st l) l (demote v))
  | Ast.LocalTee l ->
      let v, st = pop st in
      let st = set_local (scrub_local st l) l (demote v) in
      let v' = match demote v with Int iv -> Loc (l, iv) | v -> v in
      Some (push v' st)
  | Ast.GlobalGet 0 -> Some (push st.g0 st)
  | Ast.GlobalGet _ -> Some (push Top st)
  | Ast.GlobalSet n ->
      let v, st = pop st in
      if n = 0 then Some { st with g0 = demote v }
      else begin
        (* a pointer parked in an ordinary global can be reloaded —
           and freed — anywhere; for the stack-pointer global the
           demoted value keeps its provenance above *)
        escape_site ~live:st v;
        arena_taint_aval v;
        Some st
      end
  | Ast.I32Const c -> Some (push (Int (Interval.const (Int64.of_int32 c))) st)
  | Ast.I64Const c -> Some (push (Int (Interval.const c)) st)
  | Ast.F32Const _ | Ast.F64Const _ -> Some (push Top st)
  | Ast.IUnop (w, _) ->
      let _, st = pop st in
      let bits = match w with Ast.W32 -> 32L | Ast.W64 -> 64L in
      Some (push (Int (Interval.range 0L bits)) st)
  | Ast.IBinop (w, op) -> Some (eval_ibinop st w op)
  | Ast.ITestop w ->
      let v, st = pop st in
      let r =
        match v with
        | Cmp c -> Cmp { c with cneg = not c.cneg }
        | Ptr _ | Sp _ | TaggedSp _ -> Int (Interval.const 0L)
        | Int iv -> Cmp { cw = w; cop = Ast.Eq; cneg = false;
                          clhs = (None, iv); crhs = (None, Interval.const 0L) }
        | Loc (l, iv) -> Cmp { cw = w; cop = Ast.Eq; cneg = false;
                               clhs = (Some l, iv);
                               crhs = (None, Interval.const 0L) }
        | _ -> Int Interval.bool_
      in
      Some (push r st)
  | Ast.IRelop (w, op) ->
      let b, st = pop st in
      let a, st = pop st in
      let opnd = function
        | Int iv -> Some ((None : int option), iv)
        | Loc (l, iv) -> Some (Some l, iv)
        | Cmp _ -> Some (None, Interval.bool_)
        | _ -> None
      in
      let r =
        match (opnd a, opnd b) with
        | Some l, Some r ->
            Cmp { cw = w; cop = op; cneg = false; clhs = l; crhs = r }
        | _ ->
            let is_zero v =
              match iv_of v with
              | Some iv -> Interval.is_const 0L iv
              | None -> false
            in
            let is_ptr = function
              | Ptr _ | Sp _ | TaggedSp _ -> true
              | _ -> false
            in
            (* a freshly tagged pointer is never null: malloc's OOM arm
               is the only source of 0 and the join keeps the pointer *)
            if (is_ptr a && is_zero b) || (is_zero a && is_ptr b) then
              match op with
              | Ast.Eq -> Int (Interval.const 0L)
              | Ast.Ne -> Int (Interval.const 1L)
              | _ -> Int Interval.bool_
            else Int Interval.bool_
      in
      Some (push r st)
  | Ast.FUnop _ ->
      let _, st = pop st in
      Some (push Top st)
  | Ast.FBinop _ ->
      let _, st = pop st in
      let _, st = pop st in
      Some (push Top st)
  | Ast.FRelop _ ->
      let _, st = pop st in
      let _, st = pop st in
      Some (push (Int Interval.bool_) st)
  | Ast.Cvtop c -> (
      let v, st = pop st in
      match c with
      | Ast.I32WrapI64 -> (
          match iv_of v with
          | Some iv
            when Interval.lo_ge iv Interval.i32_min
                 && (match iv.hi with
                    | Some h -> h <= Interval.i32_max
                    | None -> false) ->
              Some (push v st)
          | _ -> Some (push (Int Interval.i32_full) st))
      | Ast.I64ExtendI32S -> Some (push v st)
      | Ast.I64ExtendI32U -> (
          match iv_of v with
          | Some iv when Interval.is_nonneg iv -> Some (push v st)
          | Some iv -> Some (push (Int (Interval.extend_u32 iv)) st)
          | None -> Some (push (Int (Interval.range 0L 0xFFFF_FFFFL)) st))
      | _ -> Some (push Top st))
  | Ast.Load (ty, pack, ma) ->
      let addr, st = pop st in
      let len = access_len ty (Option.map fst pack) in
      let eff = addr_plus addr ma.Ast.offset in
      check_access fenv st ~id ~addr:eff ~len:(Interval.const len)
        ~is_store:false ~elide_ok:true;
      let v =
        match (ty, pack) with
        | _, Some (Ast.Pack8, Ast.ZX) -> Int (Interval.range 0L 0xffL)
        | _, Some (Ast.Pack16, Ast.ZX) -> Int (Interval.range 0L 0xffffL)
        | _, Some (Ast.Pack32, Ast.ZX) -> Int (Interval.range 0L 0xffff_ffffL)
        | _, Some (Ast.Pack8, Ast.SX) -> Int (Interval.range (-128L) 127L)
        | _, Some (Ast.Pack16, Ast.SX) -> Int (Interval.range (-32768L) 32767L)
        | _, Some (Ast.Pack32, Ast.SX) -> Int Interval.i32_full
        | Types.I32, None -> Int Interval.i32_full
        | _ -> Top
      in
      Some (push v st)
  | Ast.Store (ty, pack, ma) ->
      let v, st = pop st in
      let addr, st = pop st in
      escape_site ~live:st v; (* a pointer written to memory escapes *)
      arena_taint_aval v; (* and its tag bits can come back untracked *)
      let len = access_len ty pack in
      let eff = addr_plus addr ma.Ast.offset in
      check_access fenv st ~id ~addr:eff ~len:(Interval.const len)
        ~is_store:true ~elide_ok:true;
      Some st
  | Ast.MemorySize -> Some (push (Int Interval.nonneg) st)
  | Ast.MemoryGrow ->
      let _, st = pop st in
      Some (push (Int (Interval.of_bounds (Some (-1L)) None)) st)
  | Ast.MemoryFill ->
      let lenv, st = pop st in
      let _, st = pop st in
      let dst, st = pop st in
      let len = Option.value (iv_of lenv) ~default:Interval.top in
      check_access fenv st ~id ~addr:dst ~len ~is_store:true ~elide_ok:false;
      Some st
  | Ast.MemoryCopy ->
      let lenv, st = pop st in
      let src, st = pop st in
      let dst, st = pop st in
      let len = Option.value (iv_of lenv) ~default:Interval.top in
      check_access fenv st ~id ~addr:src ~len ~is_store:false ~elide_ok:false;
      check_access fenv st ~id ~addr:dst ~len ~is_store:true ~elide_ok:false;
      Some st
  | Ast.SegmentNew _ ->
      let lenv, st = pop st in
      let base, st = pop st in
      let g = fenv.g in
      let size = Option.value (iv_of lenv) ~default:Interval.top in
      let key, kind =
        match base with
        | Sp (_, off) when Interval.singleton off <> None ->
            ( stack_key fenv.path (Option.get (Interval.singleton off)),
              Stack )
        | _ -> (heap_key fenv.path id, Heap)
      in
      let site =
        find_site g ~key ~kind ~path:fenv.path ~instr:id
          ~lidx:(cur_lidx fenv) ~size
      in
      (* a blacklisted function's body may run in contexts this
         analysis never saw, so its allocations keep real tag writes *)
      if Array.length fenv.verdict_row = 0 then site.s_arena_unsafe <- true;
      (match IMap.find_opt site.s_id st.live with
      | Some Live -> site.s_multi <- true (* loop allocation: ≥2 live *)
      | Some (Freed | MaybeFreed) -> site.s_reincarnated <- true
      | _ -> ());
      let live = IMap.add site.s_id Live st.live in
      Some (push (Ptr { site; off = Interval.const 0L; tagged = true })
              { st with live })
  | Ast.SegmentSetTag _ -> (
      let lenv, st = pop st in
      let tagged, st = pop st in
      let _base, st = pop st in
      let g = fenv.g in
      match tagged with
      | TaggedSp (_, foff) ->
          (* stack-slot tagging: the slot becomes a live stack site and
             every copy of the pending tagged address becomes a pointer *)
          let size = Option.value (iv_of lenv) ~default:Interval.top in
          let site =
            find_site g ~key:(stack_key fenv.path foff) ~kind:Stack
              ~path:fenv.path ~instr:id ~lidx:(cur_lidx fenv) ~size
          in
          (match IMap.find_opt site.s_id st.live with
          | Some Live -> site.s_multi <- true
          | _ -> ());
          let ptr = Ptr { site; off = Interval.const 0L; tagged = true } in
          let sub v = if aval_equal v tagged then ptr else v in
          Some
            {
              locals = Array.map sub st.locals;
              stack = List.map sub st.stack;
              g0 = sub st.g0;
              live = IMap.add site.s_id Live st.live;
            }
      | Sp (_, off) -> (
          (* retag back to the stack's own (zero) tag: the epilogue
             freeing a slot *)
          match Interval.singleton off with
          | Some o -> (
              match Hashtbl.find_opt g.sites (stack_key fenv.path o) with
              | Some site ->
                  Some { st with live = IMap.add site.s_id Freed st.live }
              | None -> Some st)
          | None -> Some st)
      | Ptr { site; _ } ->
          (* an explicit retag writes the tag plane: the site's tag
             writes are real, so it cannot move to the arena *)
          site.s_arena_unsafe <- true;
          Some { st with live = IMap.add site.s_id Live st.live }
      | v ->
          arena_taint_aval v;
          Some { st with live = havoc_live st.live })
  | Ast.SegmentFree _ -> (
      let _, st = pop st in
      let ptr, st = pop st in
      let g = fenv.g in
      (* record what this free instruction can free: the arena fixpoint
         in {!Escape} lowers a free only when every site reaching it is
         an arena candidate and nothing about the free is dirty *)
      let fkey = (cur_lidx fenv, id) in
      let sites_r, dirty_r =
        match Hashtbl.find_opt g.frees fkey with
        | Some r -> r
        | None ->
            let r = (ref [], ref false) in
            Hashtbl.add g.frees fkey r;
            r
      in
      if Array.length fenv.verdict_row = 0 then dirty_r := true;
      match ptr with
      | Ptr { site; _ } ->
          if g.recording then begin
            if not (List.memq site !sites_r) then
              sites_r := site :: !sites_r;
            (match IMap.find_opt site.s_id st.live with
            | Some Live -> ()
            | _ ->
                (* freeing a maybe-freed pointer: the runtime
                   matches-check is load-bearing here *)
                dirty_r := true)
          end;
          (match IMap.find_opt site.s_id st.live with
          | Some Freed ->
              diag fenv ~id ~severity:(sev_of site)
                (Printf.sprintf "double free of segment %s" site.s_key)
          | Some MaybeFreed ->
              diag fenv ~id ~severity:Possible
                (Printf.sprintf "possible double free of segment %s"
                   site.s_key)
          | _ -> ());
          let l = if site.s_multi then MaybeFreed else Freed in
          Some { st with live = IMap.add site.s_id l st.live }
      | Sp _ | TaggedSp _ ->
          dirty_r := true;
          Some st
      | v ->
          dirty_r := true;
          arena_taint_aval v;
          Some { st with live = havoc_live st.live })
  | Ast.PointerSign | Ast.PointerAuth ->
      (* signing scrambles the high bits; conservatively forget the
         value so elision never survives a PAC round-trip. The tag
         survives a sign/auth round-trip inside the now-opaque value,
         so the site's tag plane must stay real. *)
      let v, st = pop st in
      arena_taint_aval v;
      Some (push Top st)
  | Ast.Call f -> handle_call fenv st ~id f
  | Ast.CallIndirect ti -> (
      let _, st = pop st in
      let g = fenv.g in
      let ft = Ast.func_type_of g.m ti in
      let nparams = List.length ft.Types.params in
      let args_topfirst, st = popn st nparams in
      let args = List.rev args_topfirst in
      let nresults = List.length ft.Types.results in
      (* the join of the summaries of every type-matching function in
         the table is a sound stand-in for whichever one runs *)
      match Summary.indirect_join g.cg g.summaries ti with
      | Some s when s.Summary.sm_params = nparams ->
          List.iteri
            (fun i v ->
              if s.Summary.sm_escapes.(i) then escape_site v;
              if
                s.Summary.sm_used.(i)
                && (s.Summary.sm_touches_mem || s.Summary.sm_mutates)
              then arena_taint_aval v)
            args;
          let live =
            if s.Summary.sm_mutates then havoc_live st.live else st.live
          in
          Some (push_n Top nresults { st with live })
      | _ ->
          (* empty table set (a trapping call at runtime) or an arity
             mismatch: fall back to the blanket havoc *)
          List.iter escape_site args;
          List.iter arena_taint_aval args;
          let live = havoc_live st.live in
          Some (push_n Top nresults { st with live }))

(* A [strcpy] whose source is a constant address into a data segment
   has a statically known length: scan for the NUL and check the
   destination as a store of that many bytes. *)
and check_strcpy fenv st ~id args =
  match args with
  | [ (Ptr _ as dst); src ] -> (
      let addr =
        match iv_of src with Some iv -> Interval.singleton iv | None -> None
      in
      match addr with
      | None -> ()
      | Some a ->
          List.iter
            (fun (d : Ast.data) ->
              let base = d.d_offset in
              let len = Int64.of_int (String.length d.d_bytes) in
              if a >= base && a < Int64.add base len then
                let start = Int64.to_int (Int64.sub a base) in
                match String.index_from_opt d.d_bytes start '\000' with
                | None -> ()
                | Some nul ->
                    let l = Int64.of_int (nul - start + 1) in
                    check_access fenv st ~id ~addr:dst
                      ~len:(Interval.const l) ~is_store:true ~elide_ok:false)
            fenv.g.m.Ast.datas)
  | _ -> ()

and handle_call fenv st ~id fidx =
  let g = fenv.g in
  let ft = Ast.type_of_func g.m fidx in
  let nresults = List.length ft.Types.results in
  let args_topfirst, st = popn st (List.length ft.Types.params) in
  let args = List.rev args_topfirst in
  let name = func_name g fidx in
  if name = "strcpy" then check_strcpy fenv st ~id args;
  if fidx < g.n_imports then begin
    (* host function: pointers escape, but hosts cannot free guest
       segments, so liveness survives the call *)
    List.iter escape_site args;
    Some (push_n Top nresults st)
  end
  else if List.mem fidx fenv.active || fenv.depth >= 12 then begin
    (* recursion (or a pathological call chain): inlining gives up and
       the callee's interprocedural summary takes over. Only arguments
       the callee can actually remember escape; liveness survives
       unless the callee (transitively) frees or retags; a pointer the
       callee may dereference loses arena candidacy, because the
       summarized access is not covered by any elision verdict. *)
    let s = g.summaries.(fidx) in
    List.iteri
      (fun i v ->
        if i < s.Summary.sm_params then begin
          if s.Summary.sm_escapes.(i) then escape_site v;
          (* a summarized callee may access — or free — the pointee at
             instructions no verdict covers, so its tag plane stays *)
          if
            s.Summary.sm_used.(i)
            && (s.Summary.sm_touches_mem || s.Summary.sm_mutates)
          then arena_taint_aval v
        end
        else escape_site v)
      args;
    let live =
      if s.Summary.sm_mutates then havoc_live st.live else st.live
    in
    Some (push_n Top nresults { st with live })
  end
  else
    let path = Printf.sprintf "%s#%d>%s" fenv.path id name in
    match
      analyze_func g ~path ~active:(fidx :: fenv.active)
        ~depth:(fenv.depth + 1) ~root:false fidx args st.live st.g0
    with
    | None -> None (* the callee never returns on any path *)
    | Some (rets, live, g0) ->
        Some { st with stack = List.rev rets @ st.stack; live; g0 }

(* Analyze one function activation under a concrete call string.
   Returns the (joined) return values, liveness map and stack-pointer
   global at exit, or [None] if no path returns. *)
and analyze_func g ~path ~active ~depth ~root fidx args live g0 =
  let lidx = fidx - g.n_imports in
  let f = g.funcs.(lidx) in
  let ft = g.ftypes.(lidx) in
  let nparams = List.length ft.Types.params in
  let locals =
    Array.make (nparams + List.length f.Ast.locals) (Int (Interval.const 0L))
  in
  List.iteri (fun i v -> if i < nparams then locals.(i) <- demote_cross v) args;
  let st = { locals; stack = []; g0; live } in
  let fenv =
    {
      g;
      path;
      verdict_row = (if g.blacklist.(lidx) then [||] else g.verdicts.(lidx));
      bverdict_row = (if g.blacklist.(lidx) then [||] else g.bverdicts.(lidx));
      active;
      depth;
    }
  in
  let arity = List.length ft.Types.results in
  let frame = { f_arity = arity; f_pend = None } in
  let ft_exit = eval_seq fenv [ frame ] st g.nodes.(lidx) in
  let fall =
    Option.map (fun s -> (take arity s.stack, { s with stack = [] })) ft_exit
  in
  match join_exit fall frame.f_pend with
  | None -> None
  | Some (rets, sx) ->
      (* leak check: heap sites this activation allocated and neither
         freed, escaped nor returned. The root activation is exempt —
         allocations held until program exit are reclaimed wholesale. *)
      if g.recording && not root then begin
        let fname = func_name g fidx in
        let returned s =
          List.exists
            (function Ptr { site; _ } -> site == s | _ -> false)
            rets
        in
        List.iter
          (fun s ->
            if
              s.s_kind = Heap && s.s_path = path && (not s.s_escaped)
              && (not s.s_escaped_dead)
              && (not s.s_multi)
              && (not s.s_leaked_reported)
              && not (returned s)
            then
              match IMap.find_opt s.s_id sx.live with
              | Some Live ->
                  s.s_leaked_reported <- true;
                  diag fenv ~id:s.s_instr ~severity:Definite
                    (Printf.sprintf "segment %s leaked: still live when %s returns"
                       s.s_key fname)
              | Some MaybeFreed ->
                  s.s_leaked_reported <- true;
                  diag fenv ~id:s.s_instr ~severity:Possible
                    (Printf.sprintf
                       "segment %s possibly leaked on some path through %s"
                       s.s_key fname)
              | _ -> ())
          g.all_sites
      end;
      Some (List.map demote_cross rets, sx.live, sx.g0)

(* ------------------------------------------------------------------ *)
(* Whole-module analysis                                               *)
(* ------------------------------------------------------------------ *)

type analysis = {
  a_diags : diag list;  (** sorted by (path, instruction, message) *)
  a_verdicts : int array array;
      (** per local function, per basic-instruction id:
          0 = never visited, 1 = proven elidable, 2 = not provable *)
  a_bverdicts : int array array;
      (** same shape, for the bounds half of the proof alone: a tag
          verdict of 1 implies a bounds verdict of 1 *)
  a_nbasic : int array;  (** basic-instruction count per local function *)
  a_entry : int option;  (** the analyzed entry function index, if any *)
  a_sites : site list;  (** every allocation site the analysis tracked *)
  a_frees : ((int * int) * (site list * bool)) list;
      (** per [segment.free] instruction (local function idx, basic id):
          the sites it can free and whether anything made it dirty *)
  a_spec : bool;  (** analyzed under the speculative execution model *)
}

let compare_fst (a, _) (b, _) = compare a b

let compare_diag a b =
  match compare a.d_path b.d_path with
  | 0 -> (
      match compare a.d_instr b.d_instr with
      | 0 -> compare a.d_msg b.d_msg
      | c -> c)
  | c -> c

(* The export the analysis is rooted at: [main] (what elaboration emits
   for the C entry point), falling back to [_start] then the start
   function. *)
let entry_func (m : Ast.module_) =
  let exported name =
    List.find_map
      (fun (e : Ast.export) ->
        match e.ex_desc with
        | Ast.Func_export i when e.ex_name = name -> Some i
        | _ -> None)
      m.exports
  in
  match exported "main" with
  | Some i -> Some i
  | None -> ( match exported "_start" with Some i -> Some i | None -> m.start)

let analyze ?(spec = false) (m : Ast.module_) : analysis =
  let n_imports = Ast.num_imports m in
  let funcs = Array.of_list m.funcs in
  let ftypes =
    Array.map (fun (f : Ast.func) -> Ast.func_type_of m f.Ast.ftype) funcs
  in
  let nbasic = Array.make (Array.length funcs) 0 in
  let nodes =
    Array.mapi
      (fun i (f : Ast.func) ->
        let next = ref 0 in
        let ns = build_block next f.Ast.body in
        nbasic.(i) <- !next;
        ns)
      funcs
  in
  let cg = Callgraph.build m in
  let g =
    {
      m;
      n_imports;
      funcs;
      ftypes;
      nodes;
      nbasic;
      blacklist = compute_blacklist m funcs n_imports;
      verdicts = Array.map (fun n -> Array.make n 0) nbasic;
      bverdicts = Array.map (fun n -> Array.make n 0) nbasic;
      cg;
      summaries = Summary.compute cg;
      frees = Hashtbl.create 64;
      spec;
      sites = Hashtbl.create 64;
      all_sites = [];
      site_count = 0;
      sp_count = 0;
      diags = [];
      diag_seen = Hashtbl.create 64;
      recording = true;
    }
  in
  let entry =
    match entry_func m with
    | Some i when i >= n_imports -> Some i
    | _ -> None
  in
  (match entry with
  | None -> ()
  | Some fidx ->
      let ft = Ast.type_of_func m fidx in
      let args =
        List.map
          (fun (ty : Types.val_type) ->
            match ty with
            | Types.I32 -> Int Interval.i32_full
            | Types.I64 -> Int Interval.top
            | _ -> Top)
          ft.Types.params
      in
      g.sp_count <- 1;
      let g0 = Sp (0, Interval.const 0L) in
      ignore
        (analyze_func g ~path:(func_name g fidx) ~active:[ fidx ] ~depth:0
           ~root:true fidx args IMap.empty g0));
  {
    a_diags = List.sort compare_diag g.diags;
    a_verdicts = g.verdicts;
    a_bverdicts = g.bverdicts;
    a_nbasic = g.nbasic;
    a_entry = entry;
    a_sites = g.all_sites;
    a_frees =
      List.sort compare_fst
        (Hashtbl.fold
           (fun k (sites_r, dirty_r) acc -> (k, (!sites_r, !dirty_r)) :: acc)
           g.frees []);
    a_spec = spec;
  }

let severity_string = function Definite -> "definite" | Possible -> "possible"

let pp_diag ppf d =
  Format.fprintf ppf "%s @%d: [%s] %s" d.d_path d.d_instr
    (severity_string d.d_severity) d.d_msg

let diag_to_string d = Format.asprintf "%a" pp_diag d

