(** Int64 intervals with open bounds — the numeric half of the abstract
    domain. [None] stands for -oo (as a lower bound) or +oo (as an upper
    bound). All operations are conservative: when an exact result would
    need case analysis we don't do (or could overflow), the result
    widens toward infinity, never narrows.

    Widths: the interpreter's i32 operations are modeled by clamping
    results to the i32 value range ({!clamp32}) — a result that cannot
    be proven to stay in range becomes the full i32 range, which is
    sound because the runtime wraps. *)

type t = { lo : int64 option; hi : int64 option }

let top = { lo = None; hi = None }
let const c = { lo = Some c; hi = Some c }
let of_bounds lo hi = { lo; hi }
let range lo hi = { lo = Some lo; hi = Some hi }

let bool_ = range 0L 1L
let nonneg = { lo = Some 0L; hi = None }

let singleton t =
  match (t.lo, t.hi) with
  | Some a, Some b when Int64.equal a b -> Some a
  | _ -> None

let is_const c t = match singleton t with Some v -> Int64.equal v c | None -> false

let lo_ge t c = match t.lo with Some l -> l >= c | None -> false
let is_nonneg t = lo_ge t 0L
let hi_finite t = t.hi <> None

let equal a b = a.lo = b.lo && a.hi = b.hi

let mem c t =
  (match t.lo with Some l -> c >= l | None -> true)
  && match t.hi with Some h -> c <= h | None -> true

(* meet: None (empty interval) means the path is unreachable *)
let meet a b =
  let lo =
    match (a.lo, b.lo) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (Int64.max x y)
  in
  let hi =
    match (a.hi, b.hi) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (Int64.min x y)
  in
  match (lo, hi) with
  | Some l, Some h when l > h -> None
  | _ -> Some { lo; hi }

let join a b =
  let lo =
    match (a.lo, b.lo) with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (Int64.min x y)
  in
  let hi =
    match (a.hi, b.hi) with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (Int64.max x y)
  in
  { lo; hi }

(** Per-bound widening of [next] against the previous iterate [prev]: a
    bound that moved since the last iteration goes to infinity, a
    stable bound is kept — so loop counters keep the bound their
    initialisation pins while the moving bound blows up (and is later
    re-narrowed by branch refinement). *)
let widen ~prev ~next =
  let lo =
    match (prev.lo, next.lo) with
    | Some p, Some n when n >= p -> Some p
    | _ -> None
  in
  let hi =
    match (prev.hi, next.hi) with
    | Some p, Some n when n <= p -> Some p
    | _ -> None
  in
  { lo; hi }

(** Saturating successor/predecessor of a bound: [None] when the step
    would wrap past the representable extreme. Branch refinement uses
    these to turn [x < k] into [x <= k-1] — at [k = min_int] the naive
    [Int64.sub k 1L] wraps around to [max_int] and silently inverts the
    constraint, so a bound at the edge must widen to infinity instead.
    The same wrap corrupts widening of [[k, max_int]]-shaped intervals
    downstream, which is the overflow-boundary bug this guards. *)
let succ_sat v =
  if Int64.equal v Int64.max_int then None else Some (Int64.add v 1L)

let pred_sat v =
  if Int64.equal v Int64.min_int then None else Some (Int64.sub v 1L)

(* Overflow-checked int64 arithmetic: [None] = overflowed. *)
let add_exact a b =
  let s = Int64.add a b in
  if a >= 0L = (b >= 0L) && s >= 0L <> (a >= 0L) then None else Some s

let mul_exact a b =
  if Int64.equal a 0L || Int64.equal b 0L then Some 0L
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p b) a && not (Int64.equal p Int64.min_int)
    then Some p
    else None

(* A bound sum that overflows widens to infinity in its own direction. *)
let bound_add a b =
  match (a, b) with
  | Some x, Some y -> add_exact x y
  | _ -> None

let add a b = { lo = bound_add a.lo b.lo; hi = bound_add a.hi b.hi }

let neg a =
  let flip = function
    | Some x when not (Int64.equal x Int64.min_int) -> Some (Int64.neg x)
    | _ -> None
  in
  { lo = flip a.hi; hi = flip a.lo }

let sub a b = add a (neg b)

let mul a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> (
      match mul_exact x y with Some p -> const p | None -> top)
  | _ ->
      if is_nonneg a && is_nonneg b then
        let lo =
          match (a.lo, b.lo) with
          | Some x, Some y -> (
              match mul_exact x y with Some p -> Some p | None -> Some 0L)
          | _ -> Some 0L
        in
        let hi =
          match (a.hi, b.hi) with
          | Some x, Some y -> mul_exact x y
          | _ -> None
        in
        { lo; hi }
      else top

(* Division/remainder: only the shapes the analyzer meets are made
   precise — everything else is sound-but-top. *)

let div_s a b =
  match singleton b with
  | Some d when d > 0L && is_nonneg a ->
      let q = function Some x -> Some (Int64.div x d) | None -> None in
      { lo = (match a.lo with Some l -> Some (Int64.div l d) | None -> Some 0L);
        hi = q a.hi }
  | _ -> top

let rem_u a b =
  match singleton b with
  | Some d when d > 0L ->
      if is_nonneg a && (match a.hi with Some h -> h < d | None -> false)
      then a
      else range 0L (Int64.sub d 1L)
  | _ -> if is_nonneg a then { lo = Some 0L; hi = a.hi } else top

let rem_s a b =
  match singleton b with
  | Some d when d > 0L && is_nonneg a ->
      let cap = Int64.sub d 1L in
      { lo = Some 0L;
        hi = (match a.hi with Some h -> Some (Int64.min h cap) | None -> Some cap) }
  | _ -> if is_nonneg a then { lo = Some 0L; hi = a.hi } else top

let logand a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> const (Int64.logand x y)
  | _, Some m when m >= 0L -> range 0L m
  | Some m, _ when m >= 0L -> range 0L m
  | _ -> top

(* Smallest all-ones mask covering [v] — or/xor of nonnegative values
   stays under it. *)
let rec ones_cover v = if v <= 0L then 0L else Int64.logor v (ones_cover (Int64.shift_right_logical v 1))

let logor a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> const (Int64.logor x y)
  | _ ->
      if is_nonneg a && is_nonneg b then
        match (a.hi, b.hi) with
        | Some x, Some y -> range 0L (ones_cover (Int64.max x y))
        | _ -> { lo = Some 0L; hi = None }
      else top

let logxor a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> const (Int64.logxor x y)
  | _ ->
      if is_nonneg a && is_nonneg b then
        match (a.hi, b.hi) with
        | Some x, Some y -> range 0L (ones_cover (Int64.max x y))
        | _ -> { lo = Some 0L; hi = None }
      else top

let shl a b =
  match singleton b with
  | Some s when s >= 0L && s < 64L -> (
      let s = Int64.to_int s in
      match (singleton a, is_nonneg a) with
      | Some x, _ ->
          let r = Int64.shift_left x s in
          if Int64.equal (Int64.shift_right r s) x then const r else top
      | None, true ->
          let sh = function
            | Some x ->
                let r = Int64.shift_left x s in
                if Int64.equal (Int64.shift_right r s) x then Some r else None
            | None -> None
          in
          { lo = Some 0L; hi = sh a.hi }
      | _ -> top)
  | _ -> top

let shr_u a b =
  match singleton b with
  | Some 0L -> a
  | Some s when s > 0L && s < 64L ->
      let s = Int64.to_int s in
      if is_nonneg a then
        { lo = Some 0L;
          hi =
            (match a.hi with
            | Some h -> Some (Int64.shift_right_logical h s)
            | None -> None) }
      else range 0L (Int64.shift_right_logical (-1L) s)
  | _ -> top

let shr_s a b =
  match singleton b with
  | Some s when s >= 0L && s < 64L ->
      let s = Int64.to_int s in
      let sh = function Some x -> Some (Int64.shift_right x s) | None -> None in
      { lo = sh a.lo; hi = sh a.hi }
  | _ -> top

(* i32 value range *)
let i32_min = Int64.of_int32 Int32.min_int
let i32_max = Int64.of_int32 Int32.max_int
let i32_full = range i32_min i32_max

(** Clamp an i32 operation result: in-range intervals pass through,
    anything that may wrap becomes the full i32 range. *)
let clamp32 t =
  match (t.lo, t.hi) with
  | Some l, Some h when l >= i32_min && h <= i32_max -> t
  | _ -> i32_full

(** Zero-extension of an i32 value to i64. *)
let extend_u32 t =
  if is_nonneg t then t else range 0L 0xffff_ffffL

let pp ppf t =
  let b ppf = function
    | Some v -> Format.fprintf ppf "%Ld" v
    | None -> Format.pp_print_string ppf "?"
  in
  match singleton t with
  | Some v -> Format.fprintf ppf "%Ld" v
  | None -> Format.fprintf ppf "[%a,%a]" b t.lo b t.hi

let to_string t = Format.asprintf "%a" pp t
