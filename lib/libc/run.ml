(** One-call compile-and-run: source + Table 3 configuration → result.

    This is the toolchain a user of the artifact drives: pick a
    configuration, hand it C source, get back the exported entry
    point's result and anything the program printed. *)

type result = {
  values : Wasm.Values.t list;  (** entry-point results *)
  output : string;              (** captured console output *)
  instance : Wasm.Instance.t;
  compiled : Minic.Driver.compiled;
  exit_code : int option;       (** set when the guest called proc_exit *)
}

(** Compile [source] (with the matching libc prelude) under [cfg] and
    call [entry]. Guest traps propagate as [Wasm.Instance.Trap]. *)
let run ?(cfg = Cage.Config.baseline_wasm64) ?meter ?(seed = 0)
    ?(entry = "main") ?(args = []) ?(mem_pages = 80L) source : result =
  let opts =
    { (Minic.Driver.options_of_config cfg) with Minic.Driver.mem_pages }
  in
  let prelude = Source.prelude_of_config cfg in
  let compiled = Minic.Driver.compile ~opts ~prelude source in
  let wasi = Wasi.create () in
  let config = Cage.Config.instance_config ?meter ~seed cfg in
  let config =
    if cfg.Cage.Config.elide_checks then begin
      let plan =
        Analysis.Elide.plan
          ~spec_safe:cfg.Cage.Config.spec_safe_only
          ~arena:cfg.Cage.Config.arena compiled.co_module
      in
      {
        config with
        Wasm.Instance.elide = plan.Analysis.Elide.bitsets;
        belide =
          (if cfg.Cage.Config.elide_bounds then plan.Analysis.Elide.bbitsets
           else [||]);
        arena = plan.Analysis.Elide.arena;
      }
    end
    else config
  in
  let instance =
    Wasm.Exec.instantiate ~config ~imports:(Wasi.imports wasi)
      compiled.co_module
  in
  let values, exit_code =
    try (Wasm.Exec.invoke instance entry args, None)
    with Wasi.Proc_exit code -> ([], Some code)
  in
  { values; output = Wasi.output wasi; instance; compiled; exit_code }

(** The result's single integer value, for the common [int main()]
    shape. *)
let ret_i32 r =
  match (r.values, r.exit_code) with
  | _, Some code -> Int32.of_int code
  | [ Wasm.Values.I32 v ], None -> v
  | _ -> invalid_arg "Run.ret_i32: entry did not return a single i32"
