(* End-to-end tests for the MiniC toolchain: source is compiled by our
   own pipeline, instantiated in the wasm interpreter, and executed.
   Each test compiles under at least the baseline wasm64 configuration;
   several also check wasm32 and the hardened configurations. *)

let ret ?cfg ?entry ?(args = []) src =
  Libc.Run.ret_i32 (Libc.Run.run ?cfg ?entry ~args src)

let check_ret ?cfg ?entry ?args name expect src =
  Alcotest.(check int32) name expect (ret ?cfg ?entry ?args src)

let check_out name expect src =
  let r = Libc.Run.run src in
  Alcotest.(check string) name expect r.Libc.Run.output

let expect_trap ~substring f =
  match f () with
  | (_ : int32) -> Alcotest.failf "expected trap mentioning %S" substring
  | exception Wasm.Instance.Trap msg ->
      if not (Astring.String.is_infix ~affix:substring msg) then
        Alcotest.failf "trap %S does not mention %S" msg substring

(* ------------------------------------------------------------------ *)
(* Arithmetic & control flow                                           *)
(* ------------------------------------------------------------------ *)

let test_return_const () =
  check_ret "constant" 42l "int main() { return 42; }"

let test_precedence () =
  check_ret "precedence" 14l "int main() { return 2 + 3 * 4; }";
  check_ret "parens" 20l "int main() { return (2 + 3) * 4; }";
  check_ret "mixed" 7l "int main() { return 1 + 2 * 3 % 4 + 2 * 2; }"

let test_division_signs () =
  check_ret "signed div" (-3l) "int main() { return -7 / 2; }";
  check_ret "signed rem" (-1l) "int main() { return -7 % 2; }";
  check_ret "unsigned div" 2147483641l
    "int main() { unsigned int x = 4294967283; return (int)(x / 2); }"

let test_bitops () =
  check_ret "and or xor" 14l
    "int main() { return (12 & 10) | (12 ^ 10); }";
  check_ret "shifts" 24l "int main() { return (3 << 4) >> 1; }";
  check_ret "bnot" (-1l) "int main() { return ~0; }"

let test_comparisons () =
  check_ret "lt" 1l "int main() { return 3 < 4; }";
  check_ret "unsigned compare" 1l
    "int main() { unsigned int big = 4294967295; return big > 5u; }";
  check_ret "logical ops" 1l "int main() { return (1 && 0) || (2 > 1); }"

let test_short_circuit () =
  (* the second operand must not run when the first decides *)
  check_ret "short circuit" 5l
    {|
      int g = 0;
      int bump() { g = g + 1; return 1; }
      int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        if (g != 0) { return 99; }
        return 5 * (a + b);
      }
    |}

let test_if_else_chain () =
  check_ret "else if" 2l
    {|
      int classify(int x) {
        if (x < 0) { return 0; }
        else if (x == 0) { return 1; }
        else { return 2; }
      }
      int main() { return classify(17); }
    |}

let test_while_loop () =
  check_ret "sum 1..10" 55l
    {|
      int main() {
        int i = 1; int s = 0;
        while (i <= 10) { s += i; i++; }
        return s;
      }
    |}

let test_for_loop () =
  check_ret "for" 45l
    {|
      int main() {
        int s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        return s;
      }
    |}

let test_do_while () =
  check_ret "do-while runs once" 1l
    {|
      int main() {
        int n = 0;
        do { n++; } while (n < 0);
        return n;
      }
    |}

let test_break_continue () =
  check_ret "break/continue" 25l
    {|
      int main() {
        int s = 0;
        for (int i = 0; i < 100; i++) {
          if (i % 2 == 0) { continue; }
          if (i >= 10) { break; }
          s += i;
        }
        return s;
      }
    |}

let test_nested_loops () =
  check_ret "nested" 100l
    {|
      int main() {
        int c = 0;
        for (int i = 0; i < 10; i++)
          for (int j = 0; j < 10; j++)
            c++;
        return c;
      }
    |}

let test_ternary () =
  check_ret "ternary" 7l "int main() { int x = 3; return x > 2 ? 7 : 9; }"

let test_recursion () =
  check_ret "fib" 55l
    {|
      int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
      int main() { return fib(10); }
    |}

let test_switch_dense () =
  (* dense case values lower to a single br_table *)
  check_ret "switch dense" 305l
    {|
      int classify(int x) {
        switch (x) {
          case 0: return 100;
          case 1: return 200;
          case 2: { int y = x * 3; return y; }
          default: return -1;
        }
      }
      int main() { return classify(0) + classify(1) + classify(2) + classify(9); }
    |}

let test_switch_sparse () =
  (* sparse values lower to a compare chain *)
  check_ret "switch sparse" 1230l
    {|
      int f(int x) {
        switch (x) {
          case 10: return 1;
          case 1000: return 2;
          case -5: return 3;
          default: return 0;
        }
      }
      int main() { return f(10) * 1000 + f(1000) * 100 + f(-5) * 10 + f(7); }
    |}

let test_switch_break_and_default () =
  (* MiniC switch: implicit break between cases; explicit break exits
     the switch, break in an enclosing loop still targets the loop *)
  check_ret "switch break" 212l
    {|
      int main() {
        int total = 0;
        for (int i = 0; i < 6; i++) {
          switch (i % 3) {
            case 0: total += 1;
            case 1: { if (i > 2) { break; } total += 10; }
            default: total += 100;
          }
        }
        return total;
      }
    |}

let test_switch_no_default () =
  check_ret "switch without default" 7l
    {|
      int main() {
        int r = 7;
        switch (3) {
          case 1: r = 1;
          case 2: r = 2;
        }
        return r;
      }
    |}

let test_switch_on_long () =
  check_ret "switch on long scrutinee" 2l
    {|
      int main() {
        long big = 5000000000;
        switch (big - 4999999999) {
          case 0: return 1;
          case 1: return 2;
          default: return 3;
        }
      }
    |}

let test_switch_uses_br_table () =
  (* the dense lowering must actually emit a br_table *)
  let src =
    {|
      int pick(int x) {
        switch (x) {
          case 0: return 5;
          case 1: return 6;
          case 2: return 7;
          case 3: return 8;
          default: return 0;
        }
      }
      int main() { return pick(2); }
    |}
  in
  let c = Minic.Driver.compile src in
  let rec has_br_table (instrs : Wasm.Ast.instr list) =
    List.exists
      (function
        | Wasm.Ast.BrTable _ -> true
        | Wasm.Ast.Block (_, b) | Wasm.Ast.Loop (_, b) -> has_br_table b
        | Wasm.Ast.If (_, a, b) -> has_br_table a || has_br_table b
        | _ -> false)
      instrs
  in
  Alcotest.(check bool) "br_table emitted" true
    (List.exists
       (fun (f : Wasm.Ast.func) -> has_br_table f.body)
       c.Minic.Driver.co_module.Wasm.Ast.funcs)

let test_mutual_recursion () =
  check_ret "even/odd" 1l
    {|
      int is_odd(int n);
      int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
      int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
      int main() { return is_even(42); }
    |}

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_long_arith () =
  check_ret "64-bit" 1l
    {|
      int main() {
        long big = 4000000000;
        long sq = big * 2;
        return sq == 8000000000 ? 1 : 0;
      }
    |}

let test_char_type () =
  check_ret "char wraps" 44l
    "int main() { char c = 300; return c; }"

let test_float_double () =
  check_ret "double arith" 6l
    "int main() { double x = 2.5; double y = 0.1; return (int)((x + y) * 2.31); }";
  check_ret "float demote" 1l
    {|
      int main() {
        float f = 0.1f;
        double d = 0.1;
        return (double)f != d;  /* f32 rounding is visible */
      }
    |}

let test_int_float_conversions () =
  check_ret "conversions" 3l
    "int main() { int i = 7; double d = i; return (int)(d / 2.0); }"

let test_casts () =
  check_ret "narrowing" 56l
    "int main() { long x = 0x1234567890abc138; return (char)x; }"

let test_sizeof () =
  check_ret "sizeof" 29l
    {|
      struct Pair { int a; long b; };
      int main() {
        return (int)(sizeof(int) + sizeof(long) + sizeof(char)
                     + sizeof(struct Pair));  /* 4+8+1+16 */
      }
    |}

let test_globals () =
  check_ret "globals" 30l
    {|
      int counter = 10;
      long offset = 20;
      int main() { counter += (int)offset; return counter; }
    |}

let test_global_array () =
  check_ret "global array" 6l
    {|
      int table[4] = {1, 2, 3};
      int main() { return table[0] + table[1] + table[2] + table[3]; }
    |}

(* ------------------------------------------------------------------ *)
(* Arrays, pointers, structs                                           *)
(* ------------------------------------------------------------------ *)

let test_local_array () =
  check_ret "array sum" 40l
    {|
      int main() {
        int a[4];
        for (int i = 0; i < 4; i++) { a[i] = (i + 1) * 4; }
        int s = 0;
        for (int i = 0; i < 4; i++) { s += a[i]; }
        return s;
      }
    |}

let test_matrix_2d () =
  check_ret "2d array" 210l
    {|
      int main() {
        int m[4][5];
        for (int i = 0; i < 4; i++)
          for (int j = 0; j < 5; j++)
            m[i][j] = i * 5 + j;
        int s = 0;
        for (int i = 0; i < 4; i++)
          for (int j = 0; j < 5; j++)
            s += m[i][j] + 1;
        return s;   /* sum 0..19 plus 20 ones = 210 */
      }
    |}

let test_pointers_basic () =
  check_ret "deref write" 99l
    {|
      int main() {
        int x = 1;
        int *p = &x;
        *p = 99;
        return x;
      }
    |}

let test_pointer_arith () =
  check_ret "pointer walk" 10l
    {|
      int main() {
        int a[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
        int *p = a;
        int s = 0;
        for (int i = 0; i < 4; i++) { s += *p; p++; }
        return s;
      }
    |}

let test_pointer_diff () =
  check_ret "pointer difference" 3l
    {|
      int main() {
        long a[8];
        long *p = &a[5];
        long *q = &a[2];
        return (int)(p - q);
      }
    |}

let test_array_param () =
  check_ret "array parameter decays" 15l
    {|
      int sum(int *v, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s += v[i]; }
        return s;
      }
      int main() {
        int a[5];
        for (int i = 0; i < 5; i++) { a[i] = i + 1; }
        return sum(a, 5);
      }
    |}

let test_out_param () =
  check_ret "output parameter" 22l
    {|
      void divmod(int a, int b, int *q, int *r) { *q = a / b; *r = a % b; }
      int main() {
        int q; int r;
        divmod(43, 2, &q, &r);
        return q + r
          ;
      }
    |}

let test_struct_members () =
  check_ret "struct fields" 30l
    {|
      struct Point { int x; int y; };
      int main() {
        struct Point p;
        p.x = 10;
        p.y = 20;
        return p.x + p.y;
      }
    |}

let test_struct_pointer () =
  check_ret "struct via pointer" 11l
    {|
      struct Node { long value; struct Node *next; };
      int main() {
        struct Node a;
        struct Node b;
        a.value = 4;
        a.next = &b;
        b.value = 7;
        b.next = (struct Node *)0;
        return (int)(a.value + a.next->value);
      }
    |}

let test_struct_initializer () =
  check_ret "designated init" 12l
    {|
      struct Config { int width; int height; long flags; };
      int main() {
        struct Config c = {.width = 3, .height = 4, .flags = 0};
        return c.width * c.height;
      }
    |}

let test_linked_list_heap () =
  check_ret "heap linked list" 10l
    {|
      struct Cell { long v; struct Cell *next; };
      int main() {
        struct Cell *head = (struct Cell *)0;
        for (int i = 1; i <= 4; i++) {
          struct Cell *c = (struct Cell *)malloc(sizeof(struct Cell));
          c->v = i;
          c->next = head;
          head = c;
        }
        long s = 0;
        while (head != (struct Cell *)0) {
          s += head->v;
          struct Cell *dead = head;
          head = head->next;
          free(dead);
        }
        return (int)s;
      }
    |}

(* ------------------------------------------------------------------ *)
(* Function pointers                                                   *)
(* ------------------------------------------------------------------ *)

let test_function_pointer_call () =
  check_ret "fn ptr" 9l
    {|
      int add2(int x) { return x + 2; }
      int main() {
        int (*f)(int) = add2;
        return f(7);
      }
    |}

let test_function_pointer_select () =
  check_ret "fn ptr dispatch" 12l
    {|
      int twice(int x) { return x * 2; }
      int thrice(int x) { return x * 3; }
      int apply(int (*op)(int), int v) { return op(v); }
      int main() { return apply(twice, 3) + apply(thrice, 2); }
    |}

let test_vtable_struct () =
  (* Listing 1's shape: a struct of function pointers *)
  check_ret "vtable" 21l
    {|
      long foo() { return 20; }
      long bar() { return 1; }
      struct VTable { long (*f)(); long (*g)(); };
      int main() {
        struct VTable v = {.f = foo, .g = bar};
        return (int)(v.f() + v.g());
      }
    |}

(* ------------------------------------------------------------------ *)
(* libc                                                                *)
(* ------------------------------------------------------------------ *)

let test_malloc_free_reuse () =
  check_ret "allocator reuses freed chunk" 1l
    {|
      int main() {
        char *a = (char *)malloc(64);
        long addr_a = (long)a & 0xffffffffffff;
        free(a);
        char *b = (char *)malloc(64);
        long addr_b = (long)b & 0xffffffffffff;
        return addr_a == addr_b;
      }
    |}

let test_malloc_zeroed () =
  check_ret "calloc zero" 0l
    {|
      int main() {
        int *p = (int *)calloc(16, 4);
        int s = 0;
        for (int i = 0; i < 16; i++) { s += p[i]; }
        return s;
      }
    |}

let test_realloc_preserves () =
  check_ret "realloc" 55l
    {|
      int main() {
        int *p = (int *)malloc(10 * 4);
        for (int i = 0; i < 10; i++) { p[i] = i + 1; }
        p = (int *)realloc(p, 40 * 4);
        int s = 0;
        for (int i = 0; i < 10; i++) { s += p[i]; }
        return s;
      }
    |}

let test_strings () =
  check_ret "strlen/strcpy/strcmp" 1l
    {|
      int main() {
        char buf[32];
        strcpy(buf, "hello world");
        if (strlen(buf) != 11) { return 0; }
        if (strcmp(buf, "hello world") != 0) { return 0; }
        return 1;
      }
    |}

let test_print_output () =
  check_out "print functions" "7\nhi\n"
    {|
      int main() {
        print_i64(7);
        print_str("hi");
        return 0;
      }
    |}

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

let poly_kernel = {|
      int main() {
        double a[6][6]; double b[6][6]; double c[6][6];
        for (int i = 0; i < 6; i++)
          for (int j = 0; j < 6; j++) {
            a[i][j] = (double)(i + j) / 3.0;
            b[i][j] = (double)(i - j) / 7.0;
            c[i][j] = 0.0;
          }
        for (int i = 0; i < 6; i++)
          for (int k = 0; k < 6; k++)
            for (int j = 0; j < 6; j++)
              c[i][j] += a[i][k] * b[k][j];
        double sum = 0.0;
        for (int i = 0; i < 6; i++)
          for (int j = 0; j < 6; j++)
            sum += c[i][j];
        return (int)(sum * 100.0);
      }
    |}

let test_all_configs_agree () =
  (* the same program must compute the same value under every Table 3
     configuration — the differential test of Fig. 14's methodology *)
  let results =
    List.map
      (fun cfg -> (cfg.Cage.Config.name, ret ~cfg poly_kernel))
      Cage.Config.table3
  in
  match results with
  | (_, first) :: rest ->
      List.iter
        (fun (name, v) ->
          Alcotest.(check int32) (name ^ " agrees") first v)
        rest
  | [] -> Alcotest.fail "no configurations"

let test_wasm32_pointers () =
  check_ret ~cfg:Cage.Config.baseline_wasm32 "wasm32 pointers" 10l
    {|
      int main() {
        int a[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
        int *p = a;
        return p[0] + p[1] + p[2] + p[3];
      }
    |}

(* ------------------------------------------------------------------ *)
(* Memory-safety behaviour under the Cage configurations               *)
(* ------------------------------------------------------------------ *)

let heap_overflow_prog = {|
      int main() {
        char *buf = (char *)malloc(16);
        /* write one past the end: lands in the next chunk's header */
        buf[16] = 65;
        return buf[16];
      }
    |}

let test_heap_overflow_caught () =
  (* baseline lets it corrupt memory silently *)
  Alcotest.(check int32) "baseline misses it" 65l
    (ret ~cfg:Cage.Config.baseline_wasm64 heap_overflow_prog);
  (* the hardened allocator's segment catches it *)
  expect_trap ~substring:"tag fault" (fun () ->
      ret ~cfg:Cage.Config.mem_safety heap_overflow_prog)

let heap_uaf_prog = {|
      int main() {
        long *p = (long *)malloc(32);
        p[0] = 77;
        free(p);
        return (int)p[0];   /* use after free */
      }
    |}

let test_heap_uaf_caught () =
  Alcotest.(check int32) "baseline misses UAF" 77l
    (ret ~cfg:Cage.Config.baseline_wasm64 heap_uaf_prog);
  expect_trap ~substring:"tag fault" (fun () ->
      ret ~cfg:Cage.Config.mem_safety heap_uaf_prog)

let double_free_prog = {|
      int main() {
        char *p = (char *)malloc(48);
        free(p);
        free(p);
        return 0;
      }
    |}

let test_double_free_caught () =
  expect_trap ~substring:"double free" (fun () ->
      ret ~cfg:Cage.Config.mem_safety double_free_prog)

let stack_overflow_prog = {|
      void fill(char *dst, int n) {
        for (int i = 0; i < n; i++) { dst[i] = 66; }
      }
      int main() {
        char small[16];
        char big[16];
        fill(big, 16);
        fill(small, 20);   /* four bytes past the end */
        return small[0];
      }
    |}

let test_stack_overflow_caught () =
  Alcotest.(check int32) "baseline misses stack smash" 66l
    (ret ~cfg:Cage.Config.baseline_wasm64 stack_overflow_prog);
  expect_trap ~substring:"tag fault" (fun () ->
      ret ~cfg:Cage.Config.mem_safety stack_overflow_prog)

let test_safe_stack_not_instrumented () =
  (* constant, in-bounds indexing only: Algorithm 1 leaves it alone *)
  let src =
    {|
      int main() {
        int a[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
        return a[0] + a[3];
      }
    |}
  in
  let opts =
    { (Minic.Driver.options_of_config Cage.Config.mem_safety) with
      Minic.Driver.memsafety = true }
  in
  let c = Minic.Driver.compile ~opts src in
  Alcotest.(check int) "no slots instrumented" 0
    c.Minic.Driver.co_sanitizer.Minic.Stack_sanitizer.instrumented

let test_unsafe_stack_instrumented () =
  let src =
    {|
      int get(int i) {
        int a[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
        return a[i];
      }
      int main() { return get(2); }
    |}
  in
  let opts = Minic.Driver.options_of_config Cage.Config.mem_safety in
  let c = Minic.Driver.compile ~opts src in
  Alcotest.(check int) "dynamic index instrumented" 1
    c.Minic.Driver.co_sanitizer.Minic.Stack_sanitizer.instrumented

(* Escape-analysis corner cases: every way of laundering a slot address
   out of direct addressing position must mark the slot as escaping —
   missing any of these would leave a reachable stack slot untagged. *)

let escaping_of src =
  let opts = Minic.Driver.options_of_config Cage.Config.mem_safety in
  let c = Minic.Driver.compile ~opts src in
  c.Minic.Driver.co_sanitizer.Minic.Stack_sanitizer.escaping

let test_escape_cvt_laundering () =
  (* the address round-trips through an int: the Cvt chain must reset
     the "safe addressing context" flag even though the final use is a
     load address *)
  let src =
    {|
      long f() {
        long a[2];
        a[0] = 5;
        return *(long*)(long)(int)(long)&a[0];
      }
      int main() { return (int)f(); }
    |}
  in
  Alcotest.(check int) "cast-laundered address escapes" 1 (escaping_of src)

let test_escape_store_reload () =
  (* the address is written to memory and reloaded; the reload is
     untrackable, so the store itself must count as an escape *)
  let src =
    {|
      int g() {
        int a[2];
        int *save[1];
        save[0] = &a[0];
        int *p = save[0];
        *p = 3;
        return a[0];
      }
      int main() { return g(); }
    |}
  in
  Alcotest.(check int) "stored-then-reloaded address escapes" 1
    (escaping_of src)

let test_escape_arith_mixed () =
  (* address + offset materialised as a plain value (not under a
     load/store) and dereferenced later *)
  let src =
    {|
      int h() {
        long a[4];
        a[1] = 7;
        long v = (long)&a[0] + 8;
        return (int)*(long*)v;
      }
      int main() { return h(); }
    |}
  in
  Alcotest.(check int) "arithmetic-mixed address escapes" 1 (escaping_of src)

let test_instrument_all_ablation () =
  let src =
    {|
      int main() {
        int a[4];
        a[0] = 1;
        int b[4];
        b[1] = 2;
        return a[0] + b[1];
      }
    |}
  in
  let base = Minic.Driver.options_of_config Cage.Config.mem_safety in
  let selective = Minic.Driver.compile ~opts:base src in
  let all =
    Minic.Driver.compile
      ~opts:{ base with Minic.Driver.instrument_all = true }
      src
  in
  Alcotest.(check int) "selective instruments nothing" 0
    selective.Minic.Driver.co_sanitizer.Minic.Stack_sanitizer.instrumented;
  Alcotest.(check int) "ablation instruments everything" 2
    all.Minic.Driver.co_sanitizer.Minic.Stack_sanitizer.instrumented

let test_pauth_config_runs () =
  check_ret ~cfg:Cage.Config.ptr_auth "fn ptrs under pauth" 12l
    {|
      int twice(int x) { return x * 2; }
      int apply(int (*op)(int), int v) { return op(v); }
      int main() { return apply(twice, 6); }
    |}

let test_full_cage_runs_everything () =
  check_ret ~cfg:Cage.Config.full "full CAGE end-to-end" 10l
    {|
      int sq(int x) { return x * x; }
      int main() {
        int (*f)(int) = sq;
        int *heap = (int *)malloc(4 * 4);
        for (int i = 0; i < 4; i++) { heap[i] = f(i); }
        int s = 0;
        for (int i = 0; i < 4; i++) { s += heap[i]; }
        free(heap);
        return s - 4;
      }
    |}

(* ------------------------------------------------------------------ *)
(* Front-end error reporting                                           *)
(* ------------------------------------------------------------------ *)

let expect_compile_error ~substring src =
  match Libc.Run.run src with
  | (_ : Libc.Run.result) ->
      Alcotest.failf "expected compile error mentioning %S" substring
  | exception Minic.Driver.Compile_error msg ->
      if not (Astring.String.is_infix ~affix:substring msg) then
        Alcotest.failf "error %S does not mention %S" msg substring

let test_error_unknown_identifier () =
  expect_compile_error ~substring:"unknown identifier"
    "int main() { return nope; }"

let test_error_call_arity () =
  expect_compile_error ~substring:"expects 2 arguments"
    "int add(int a, int b) { return a + b; } int main() { return add(1); }"

let test_error_void_value () =
  expect_compile_error ~substring:"returning a value from void"
    "void f() { return 3; } int main() { return 0; }"

let test_error_missing_return_value () =
  expect_compile_error ~substring:"missing return value"
    "int main() { return; }"

let test_error_bad_member () =
  expect_compile_error ~substring:"no member"
    {|
      struct P { int x; };
      int main() { struct P p; p.x = 1; return p.y; }
    |}

let test_error_duplicate_case () =
  expect_compile_error ~substring:"duplicate case"
    {|
      int main() {
        switch (1) { case 3: return 1; case 3: return 2; }
        return 0;
      }
    |}

let test_error_nonconst_array_size () =
  match Libc.Run.run "int main() { int n = 4; int a[n]; return 0; }" with
  | (_ : Libc.Run.result) -> Alcotest.fail "VLA accepted"
  | exception Minic.Driver.Compile_error _ -> ()

let test_error_unknown_struct () =
  expect_compile_error ~substring:"unknown struct"
    "int main() { struct Nope x; return 0; }"

let test_error_addr_of_rvalue () =
  expect_compile_error ~substring:"not an lvalue"
    "int main() { int *p = &(1 + 2); return 0; }"

let test_error_located_line () =
  (* the error message carries a usable line number *)
  match Libc.Run.run "int main() {
  int x = 1;
  return nope;
}" with
  | (_ : Libc.Run.result) -> Alcotest.fail "expected an error"
  | exception Minic.Driver.Compile_error msg ->
      Alcotest.(check bool) ("line in " ^ msg) true
        (Astring.String.is_infix ~affix:"line" msg)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_arith_matches_ocaml =
  QCheck.Test.make ~name:"compiled arithmetic agrees with OCaml" ~count:60
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range 1 100))
    (fun (a, b, c) ->
      let src =
        Printf.sprintf
          "int main() { int a = %d; int b = %d; int c = %d; return (a + b) * \
           c + a / c - b %% c; }"
          a b c
      in
      let expect = ((a + b) * c) + (a / c) - (b mod c) in
      Int32.to_int (ret src) = expect)

let prop_loop_sum =
  QCheck.Test.make ~name:"loop sums agree with closed form" ~count:40
    QCheck.(int_range 0 500)
    (fun n ->
      let src =
        Printf.sprintf
          "int main() { int s = 0; for (int i = 1; i <= %d; i++) { s += i; } \
           return s; }"
          n
      in
      Int32.to_int (ret src) = n * (n + 1) / 2)

let prop_configs_agree =
  QCheck.Test.make ~name:"all configs compute identical results" ~count:15
    QCheck.(pair (int_range 1 30) (int_range 1 9))
    (fun (n, k) ->
      let src =
        Printf.sprintf
          {|
            int main() {
              long acc = 1;
              int a[%d];
              for (int i = 0; i < %d; i++) { a[i] = (i * %d) %% 17; }
              for (int i = 0; i < %d; i++) { acc = (acc * 31 + a[i]) %% 100003; }
              return (int)acc;
            }
          |}
          n n k n
      in
      let vals =
        List.map (fun cfg -> ret ~cfg src) Cage.Config.table3
      in
      List.for_all (fun v -> v = List.hd vals) vals)

(* Differential fuzzing: generated programs must match the OCaml
   reference interpreter under every Table 3 configuration. *)
let prop_fuzz_reference =
  QCheck.Test.make ~name:"fuzzed programs match the reference oracle"
    ~count:40 QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = Workloads.Fuzzgen.generate ~seed in
      let source = Workloads.Fuzzgen.render prog in
      let expected = Workloads.Fuzzgen.reference prog in
      Int32.equal (ret ~cfg:Cage.Config.baseline_wasm64 source) expected)

let prop_fuzz_all_configs =
  QCheck.Test.make ~name:"fuzzed programs agree across all configs"
    ~count:12 QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = Workloads.Fuzzgen.generate ~seed in
      let source = Workloads.Fuzzgen.render prog in
      let expected = Workloads.Fuzzgen.reference prog in
      List.for_all
        (fun cfg -> Int32.equal (ret ~cfg source) expected)
        Cage.Config.table3)

let prop_fuzz_unoptimised_agrees =
  QCheck.Test.make ~name:"optimiser preserves fuzzed-program semantics"
    ~count:20 QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = Workloads.Fuzzgen.generate ~seed in
      let source = Workloads.Fuzzgen.render prog in
      let expected = Workloads.Fuzzgen.reference prog in
      let opts =
        { (Minic.Driver.options_of_config Cage.Config.baseline_wasm64) with
          Minic.Driver.optimize = false }
      in
      let prelude =
        Libc.Source.prelude_of_config Cage.Config.baseline_wasm64
      in
      let compiled = Minic.Driver.compile ~opts ~prelude source in
      let wasi = Libc.Wasi.create () in
      let inst =
        Wasm.Exec.instantiate
          ~config:(Cage.Config.instance_config Cage.Config.baseline_wasm64)
          ~imports:(Libc.Wasi.imports wasi) compiled.co_module
      in
      match Wasm.Exec.invoke inst "main" [] with
      | [ Wasm.Values.I32 v ] -> Int32.equal v expected
      | _ -> false)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_arith_matches_ocaml; prop_loop_sum; prop_configs_agree;
      prop_fuzz_reference; prop_fuzz_all_configs;
      prop_fuzz_unoptimised_agrees ]

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "minic"
    [
      ( "arith-control",
        [
          tc "return const" test_return_const;
          tc "precedence" test_precedence;
          tc "division signs" test_division_signs;
          tc "bitops" test_bitops;
          tc "comparisons" test_comparisons;
          tc "short circuit" test_short_circuit;
          tc "if/else chain" test_if_else_chain;
          tc "while" test_while_loop;
          tc "for" test_for_loop;
          tc "do-while" test_do_while;
          tc "break/continue" test_break_continue;
          tc "nested loops" test_nested_loops;
          tc "ternary" test_ternary;
          tc "recursion" test_recursion;
          tc "switch dense" test_switch_dense;
          tc "switch sparse" test_switch_sparse;
          tc "switch break" test_switch_break_and_default;
          tc "switch no default" test_switch_no_default;
          tc "switch on long" test_switch_on_long;
          tc "switch emits br_table" test_switch_uses_br_table;
          tc "mutual recursion" test_mutual_recursion;
        ] );
      ( "types",
        [
          tc "long arith" test_long_arith;
          tc "char" test_char_type;
          tc "float/double" test_float_double;
          tc "conversions" test_int_float_conversions;
          tc "casts" test_casts;
          tc "sizeof" test_sizeof;
          tc "globals" test_globals;
          tc "global array" test_global_array;
        ] );
      ( "memory",
        [
          tc "local array" test_local_array;
          tc "2d array" test_matrix_2d;
          tc "pointers" test_pointers_basic;
          tc "pointer arith" test_pointer_arith;
          tc "pointer diff" test_pointer_diff;
          tc "array param" test_array_param;
          tc "out param" test_out_param;
          tc "struct members" test_struct_members;
          tc "struct pointer" test_struct_pointer;
          tc "struct initializer" test_struct_initializer;
          tc "heap linked list" test_linked_list_heap;
        ] );
      ( "function-pointers",
        [
          tc "call" test_function_pointer_call;
          tc "dispatch" test_function_pointer_select;
          tc "vtable struct" test_vtable_struct;
        ] );
      ( "libc",
        [
          tc "malloc/free reuse" test_malloc_free_reuse;
          tc "calloc zero" test_malloc_zeroed;
          tc "realloc" test_realloc_preserves;
          tc "strings" test_strings;
          tc "print output" test_print_output;
        ] );
      ( "configurations",
        [
          tc "all configs agree" test_all_configs_agree;
          tc "wasm32 pointers" test_wasm32_pointers;
        ] );
      ( "memory-safety",
        [
          tc "heap overflow" test_heap_overflow_caught;
          tc "heap UAF" test_heap_uaf_caught;
          tc "double free" test_double_free_caught;
          tc "stack overflow" test_stack_overflow_caught;
          tc "safe stack untouched" test_safe_stack_not_instrumented;
          tc "unsafe stack instrumented" test_unsafe_stack_instrumented;
          tc "escape via cast laundering" test_escape_cvt_laundering;
          tc "escape via store/reload" test_escape_store_reload;
          tc "escape via arithmetic" test_escape_arith_mixed;
          tc "instrument-all ablation" test_instrument_all_ablation;
          tc "pauth config" test_pauth_config_runs;
          tc "full CAGE" test_full_cage_runs_everything;
        ] );
      ( "front-end-errors",
        [
          tc "unknown identifier" test_error_unknown_identifier;
          tc "call arity" test_error_call_arity;
          tc "void value" test_error_void_value;
          tc "missing return value" test_error_missing_return_value;
          tc "bad member" test_error_bad_member;
          tc "duplicate case" test_error_duplicate_case;
          tc "vla rejected" test_error_nonconst_array_size;
          tc "unknown struct" test_error_unknown_struct;
          tc "addr of rvalue" test_error_addr_of_rvalue;
          tc "errors carry lines" test_error_located_line;
        ] );
      ("minic-properties", qtests);
    ]
