(* Tests for the serving runtime: snapshot/restore fidelity, per-lane
   chaos determinism, the quarantine cap, the robustness policy pieces
   (breaker, backoff, restart-storm bucket), the discrete-event
   scheduler, and end-to-end serving invariants under chaos. *)

open Wasm

let value = Alcotest.testable Values.pp Values.equal

(* ------------------------------------------------------------------ *)
(* Builders (same shapes as test_supervisor)                            *)
(* ------------------------------------------------------------------ *)

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let module_of funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory = Some mem64;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let const_module =
  module_of [ (ft [] [ Types.I32 ], [], [ Ast.I32Const 41l ]) ]

let run_main sup inst = Cage.Supervisor.run sup inst "main" []

let finished_of = function
  | Cage.Supervisor.Finished vs -> vs
  | Cage.Supervisor.Crashed pm ->
      Alcotest.failf "unexpected crash: %s" pm.Cage.Supervisor.pm_message

let crash_of = function
  | Cage.Supervisor.Crashed pm -> pm
  | Cage.Supervisor.Finished _ -> Alcotest.fail "expected a crash"

(* A supervised MiniC guest under [cfg], serve-sized memory. *)
let minic_guest ?(seed = 11) cfg source =
  let m = Harness.Serve_bench.compile cfg source in
  let proc = Cage.Process.create ~config:cfg ~seed () in
  let sup = Cage.Supervisor.create ~fuel:2_000_000 proc in
  let imports, _ = Harness.Serve_bench.wasi_imports () in
  let inst = Cage.Supervisor.spawn ~imports sup m in
  (sup, inst)

(* ------------------------------------------------------------------ *)
(* Snapshot/restore fidelity                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.compute_source
  in
  let snap = Serve.Snapshot.capture inst in
  Alcotest.(check bool) "fresh instance matches its own snapshot" true
    (Serve.Snapshot.matches snap inst);
  let first = finished_of (run_main sup inst) in
  (* the run dirtied the heap (mallocs, tag draws, stores) *)
  Alcotest.(check bool) "running dirties the image" false
    (Serve.Snapshot.matches snap inst);
  Serve.Snapshot.restore snap inst;
  Alcotest.(check bool)
    "restore brings memory, tags, globals and table back byte-identical"
    true
    (Serve.Snapshot.matches snap inst);
  let second = finished_of (run_main sup inst) in
  Alcotest.(check (list value)) "restored instance replays the same result"
    first second

let test_snapshot_replay_is_exact () =
  (* without the PRNG rewind the second run would draw different irg
     tags; with it, N restore-run cycles all agree *)
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.compute_source
  in
  let snap = Serve.Snapshot.capture inst in
  let results =
    List.init 4 (fun _ ->
        Serve.Snapshot.restore snap inst;
        finished_of (run_main sup inst))
  in
  List.iter
    (fun r -> Alcotest.(check (list value)) "every replay identical" (List.hd results) r)
    results

let test_crashed_then_restored () =
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.malicious_source
  in
  let snap = Serve.Snapshot.capture inst in
  let pm1 = crash_of (run_main sup inst) in
  Serve.Snapshot.restore snap inst;
  Cage.Supervisor.release sup inst;
  let pm2 = crash_of (run_main sup inst) in
  Alcotest.(check string) "a restored crasher crashes identically"
    pm1.Cage.Supervisor.pm_message pm2.Cage.Supervisor.pm_message;
  Alcotest.(check bool) "and it really re-ran (not a quarantine refusal)"
    true
    (pm2.Cage.Supervisor.pm_class <> Cage.Supervisor.Quarantine)

(* ------------------------------------------------------------------ *)
(* Per-lane chaos streams: scheduling-order independence                *)
(* ------------------------------------------------------------------ *)

let lane_pol =
  Arch.Fault_inject.policy ~seed:99 ~probability:0.5 ~max_injections:1000
    [ Arch.Fault_inject.Tag_flip ]

(* Draw [n] times on [lane], recording the outcomes. *)
let draws_on lane n =
  Arch.Fault_inject.set_lane lane;
  List.init n (fun _ -> Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip)

let test_lane_streams_independent_of_interleaving () =
  (* sequential: all of lane 0, then all of lane 1 *)
  let e1 = Arch.Fault_inject.create lane_pol in
  let seq0, seq1 =
    Arch.Fault_inject.with_engine e1 (fun () ->
        let a = draws_on 0 40 in
        let b = draws_on 1 40 in
        (a, b))
  in
  (* interleaved: lanes alternate every 5 draws — as a pool scheduler
     bouncing between two slots would *)
  let e2 = Arch.Fault_inject.create lane_pol in
  let int0, int1 =
    Arch.Fault_inject.with_engine e2 (fun () ->
        let a = ref [] and b = ref [] in
        for _ = 1 to 8 do
          a := !a @ draws_on 0 5;
          b := !b @ draws_on 1 5
        done;
        (!a, !b))
  in
  Alcotest.(check (list bool)) "lane 0 stream unchanged by interleaving"
    seq0 int0;
  Alcotest.(check (list bool)) "lane 1 stream unchanged by interleaving"
    seq1 int1;
  Alcotest.(check bool) "lanes draw distinct streams" true (seq0 <> seq1);
  Alcotest.(check int) "per-lane charging matches"
    (Arch.Fault_inject.lane_count e1 0)
    (Arch.Fault_inject.lane_count e2 0)

let test_lane_budget_is_per_lane () =
  let pol =
    Arch.Fault_inject.policy ~seed:7 ~max_injections:2
      [ Arch.Fault_inject.Tag_flip ]
  in
  let e = Arch.Fault_inject.create pol in
  Arch.Fault_inject.with_engine e (fun () ->
      ignore (draws_on 0 10);
      ignore (draws_on 1 10));
  Alcotest.(check int) "lane 0 spent its own budget" 2
    (Arch.Fault_inject.lane_count e 0);
  Alcotest.(check int) "lane 1 spent its own budget" 2
    (Arch.Fault_inject.lane_count e 1);
  Alcotest.(check int) "total is the sum" 4 (Arch.Fault_inject.count e)

(* ------------------------------------------------------------------ *)
(* Quarantine cap                                                       *)
(* ------------------------------------------------------------------ *)

let test_quarantine_cap () =
  let proc =
    Cage.Process.create ~config:Cage.Config.baseline_wasm64 ~seed:3 ()
  in
  let sup = Cage.Supervisor.create ~max_quarantined:2 proc in
  let insts =
    List.init 5 (fun _ -> Cage.Supervisor.spawn sup const_module)
  in
  let metrics = Obs.Metrics.cage () in
  Obs.Hook.with_sink (Obs.Hook.make ~metrics ()) (fun () ->
      List.iter
        (fun inst ->
          ignore
            (crash_of
               (Cage.Supervisor.run_thunk sup inst (fun () ->
                    failwith "boom"))))
        insts);
  Alcotest.(check int) "retained post-mortems capped" 2
    (List.length (Cage.Supervisor.quarantined sup));
  (* the cap evicts records, never membership *)
  List.iter
    (fun inst ->
      Alcotest.(check bool) "every crasher still quarantined" true
        (Cage.Supervisor.is_quarantined sup inst))
    insts;
  Alcotest.(check int) "evictions counted" 3
    metrics.Obs.Metrics.quarantine_evicted.Obs.Metrics.c_value;
  (* newest records survive: the last crash is among the retained *)
  let last = List.nth insts 4 in
  Alcotest.(check bool) "newest post-mortem retained" true
    (List.exists
       (fun (id, _) -> id = last.Instance.id)
       (Cage.Supervisor.quarantined sup));
  Cage.Supervisor.release sup last;
  Alcotest.(check bool) "release clears membership" false
    (Cage.Supervisor.is_quarantined sup last)

(* ------------------------------------------------------------------ *)
(* Policy: breaker, backoff, restart-storm bucket                       *)
(* ------------------------------------------------------------------ *)

let test_breaker_lifecycle () =
  let b =
    Serve.Policy.breaker_create
      { Serve.Policy.trip_after = 3; cooldown = 100 }
  in
  Alcotest.(check bool) "closed admits" true
    (Serve.Policy.breaker_admits b ~now:0);
  Alcotest.(check bool) "first crashes do not trip" false
    (Serve.Policy.breaker_crash b ~now:1);
  ignore (Serve.Policy.breaker_crash b ~now:2);
  Alcotest.(check bool) "third consecutive crash trips" true
    (Serve.Policy.breaker_crash b ~now:3);
  Alcotest.(check bool) "open sheds" false
    (Serve.Policy.breaker_admits b ~now:50);
  Alcotest.(check bool) "after cooldown the half-open probe admits" true
    (Serve.Policy.breaker_admits b ~now:150);
  Alcotest.(check bool) "probe failure re-opens (and counts as a trip)" true
    (Serve.Policy.breaker_crash b ~now:151);
  Alcotest.(check bool) "re-opened sheds again" false
    (Serve.Policy.breaker_admits b ~now:200);
  ignore (Serve.Policy.breaker_admits b ~now:300);
  Serve.Policy.breaker_success b;
  Alcotest.(check bool) "probe success closes" true
    (Serve.Policy.breaker_admits b ~now:301);
  Alcotest.(check int) "two trips recorded" 2 (Serve.Policy.breaker_trips b)

let test_breaker_success_resets_run () =
  let b =
    Serve.Policy.breaker_create
      { Serve.Policy.trip_after = 3; cooldown = 100 }
  in
  ignore (Serve.Policy.breaker_crash b ~now:1);
  ignore (Serve.Policy.breaker_crash b ~now:2);
  Serve.Policy.breaker_success b;
  Alcotest.(check bool) "a success interrupts the crash run" false
    (Serve.Policy.breaker_crash b ~now:3);
  Alcotest.(check int) "no trips" 0 (Serve.Policy.breaker_trips b)

let test_backoff_shape () =
  let r =
    { Serve.Policy.max_attempts = 5; backoff_base = 100; backoff_factor = 2;
      backoff_cap = 500; jitter = 0 }
  in
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check int) "first retry waits the base" 100
    (Serve.Policy.backoff r rng ~attempt:1);
  Alcotest.(check int) "second doubles" 200
    (Serve.Policy.backoff r rng ~attempt:2);
  Alcotest.(check int) "growth is capped" 500
    (Serve.Policy.backoff r rng ~attempt:5);
  let j = { r with Serve.Policy.jitter = 50 } in
  let d = Serve.Policy.backoff j rng ~attempt:1 in
  Alcotest.(check bool) "jitter stays within its bound" true
    (d >= 100 && d < 150)

let test_bucket_rate_limits () =
  let b = Serve.Policy.bucket_create ~capacity:2 ~refill_every:100 in
  Alcotest.(check bool) "token 1" true (Serve.Policy.bucket_take b ~now:0);
  Alcotest.(check bool) "token 2" true (Serve.Policy.bucket_take b ~now:0);
  Alcotest.(check bool) "bucket empty: the restart storm is stopped" false
    (Serve.Policy.bucket_take b ~now:50);
  Alcotest.(check bool) "a refill period restores one token" true
    (Serve.Policy.bucket_take b ~now:120);
  Alcotest.(check bool) "but only one" false
    (Serve.Policy.bucket_take b ~now:130);
  Alcotest.(check bool) "refill never exceeds capacity" true
    (Serve.Policy.bucket_take b ~now:10_000);
  Alcotest.(check bool) "capacity is 2" true
    (Serve.Policy.bucket_take b ~now:10_000);
  Alcotest.(check bool) "not 3" false (Serve.Policy.bucket_take b ~now:10_000)

let test_retryable_classes () =
  let open Cage.Supervisor in
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (fault_class_to_string cls ^ " retries") true
        (Serve.Policy.retryable cls))
    [ Tag_fault; Deferred_tag_fault; Pac_auth; Bounds; Fuel; Host_error ];
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (fault_class_to_string cls ^ " never retries") false
        (Serve.Policy.retryable cls))
    [ Stack; Unreachable; Guest_trap; Quarantine ]

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let test_heap_order_and_ties () =
  let h = Serve.Scheduler.Heap.create () in
  Serve.Scheduler.Heap.push h ~time:30 "c";
  Serve.Scheduler.Heap.push h ~time:10 "a1";
  Serve.Scheduler.Heap.push h ~time:10 "a2";
  Serve.Scheduler.Heap.push h ~time:20 "b";
  let order =
    List.init 4 (fun _ ->
        match Serve.Scheduler.Heap.pop h with
        | Some (_, v) -> v
        | None -> Alcotest.fail "heap empty early")
  in
  Alcotest.(check (list string))
    "time order, ties broken by insertion sequence"
    [ "a1"; "a2"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Serve.Scheduler.Heap.is_empty h)

let test_fuel_sliced_round_robin () =
  let cpu = Serve.Scheduler.create ~cores:1 ~quantum:10 in
  Serve.Scheduler.submit cpu "long" ~demand:25;
  Serve.Scheduler.submit cpu "short" ~demand:5;
  let h = Serve.Scheduler.Heap.create () in
  let completions = ref [] in
  (match Serve.Scheduler.dispatch cpu ~now:0 with
  | Some s -> Serve.Scheduler.Heap.push h ~time:s.Serve.Scheduler.s_end (`S s)
  | None -> Alcotest.fail "core should dispatch");
  let rec drain () =
    match Serve.Scheduler.Heap.pop h with
    | None -> ()
    | Some (now, `S s) ->
        (match Serve.Scheduler.slice_done cpu s with
        | Some payload -> completions := (payload, now) :: !completions
        | None -> ());
        let rec refill () =
          match Serve.Scheduler.dispatch cpu ~now with
          | Some s' ->
              Serve.Scheduler.Heap.push h ~time:s'.Serve.Scheduler.s_end (`S s');
              refill ()
          | None -> ()
        in
        refill ();
        drain ()
  in
  drain ();
  (* long runs 10, short runs 5 to completion, long 10, long 5:
     short completes at t=15, long at t=30 — the quantum kept the
     short request from waiting out the long one *)
  Alcotest.(check (list (pair string int)))
    "slice interleaving lets the short request finish first"
    [ ("short", 15); ("long", 30) ]
    (List.rev !completions)

(* ------------------------------------------------------------------ *)
(* End-to-end serving invariants                                        *)
(* ------------------------------------------------------------------ *)

let mini_config requests seed =
  { Serve.Server.default_config with Serve.Server.requests; seed; slots = 2 }

let test_serving_accounting_conserves () =
  let report =
    Serve.Server.run
      ~chaos:(Harness.Serve_bench.chaos_policy ~seed:5)
      (mini_config 300 5)
      (Harness.Serve_bench.tenants ~seed:5 ())
  in
  List.iter
    (fun (tr : Serve.Server.tenant_report) ->
      Alcotest.(check int)
        (tr.Serve.Server.tr_name ^ ": ok + failed + shed = requests")
        tr.Serve.Server.tr_requests
        (tr.Serve.Server.tr_ok + tr.Serve.Server.tr_failed
        + tr.Serve.Server.tr_shed))
    report.Serve.Server.rp_tenants;
  Alcotest.(check int) "totals conserve too" report.Serve.Server.rp_requests
    (report.Serve.Server.rp_ok + report.Serve.Server.rp_failed
    + report.Serve.Server.rp_shed);
  Alcotest.(check int) "nothing escaped" 0 report.Serve.Server.rp_escaped

let test_serving_deterministic () =
  let go () =
    let r =
      Serve.Server.run
        ~chaos:(Harness.Serve_bench.chaos_policy ~seed:9)
        (mini_config 250 9)
        (Harness.Serve_bench.tenants ~seed:9 ())
    in
    ( r.Serve.Server.rp_ok, r.Serve.Server.rp_failed, r.Serve.Server.rp_shed,
      r.Serve.Server.rp_crashes, r.Serve.Server.rp_retries,
      r.Serve.Server.rp_makespan, r.Serve.Server.rp_p99,
      r.Serve.Server.rp_injections )
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "two chaos-on runs replay identically" true (a = b)

let test_malicious_tenant_contained () =
  let report =
    Serve.Server.run (mini_config 300 11)
      (Harness.Serve_bench.tenants ~seed:11 ())
  in
  let tr name =
    match Serve.Server.tenant_of report name with
    | Some t -> t
    | None -> Alcotest.failf "missing tenant %s" name
  in
  Alcotest.(check bool) "malicious tenant crashed" true
    ((tr "malicious").Serve.Server.tr_crashes > 0);
  Alcotest.(check int) "malicious tenant never succeeds" 0
    (tr "malicious").Serve.Server.tr_ok;
  Alcotest.(check bool) "its breaker tripped" true
    ((tr "malicious").Serve.Server.tr_breaker_trips > 0);
  (* chaos is off: the well-behaved neighbours are untouched *)
  List.iter
    (fun name ->
      let t = tr name in
      Alcotest.(check int)
        (name ^ " loses nothing to the noisy neighbour")
        t.Serve.Server.tr_requests t.Serve.Server.tr_ok)
    [ "compute"; "fuzz" ]

let test_served_sites_recover () =
  (* the serving path absorbs a single-shot tag flip: crash, retry on
     a pristine snapshot, succeed *)
  let cell =
    Harness.Serve_bench.served_cell ~engine:Wasm.Instance.Threaded
      ~seed:7 ~index:1
      Arch.Fault_inject.Tag_flip Arch.Mte.Sync
  in
  Alcotest.(check string) "tag-flip x sync recovers through serving"
    "recovered" cell

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip fidelity" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "replay exact" `Quick test_snapshot_replay_is_exact;
          Alcotest.test_case "crashed then restored" `Quick
            test_crashed_then_restored;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "interleaving independence" `Quick
            test_lane_streams_independent_of_interleaving;
          Alcotest.test_case "budget per lane" `Quick test_lane_budget_is_per_lane;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "cap + eviction metric" `Quick test_quarantine_cap ]
      );
      ( "policy",
        [
          Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "breaker success resets" `Quick
            test_breaker_success_resets_run;
          Alcotest.test_case "backoff shape" `Quick test_backoff_shape;
          Alcotest.test_case "restart-storm bucket" `Quick test_bucket_rate_limits;
          Alcotest.test_case "retryable classes" `Quick test_retryable_classes;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "heap order + ties" `Quick test_heap_order_and_ties;
          Alcotest.test_case "fuel-sliced round robin" `Quick
            test_fuel_sliced_round_robin;
        ] );
      ( "server",
        [
          Alcotest.test_case "accounting conserves" `Quick
            test_serving_accounting_conserves;
          Alcotest.test_case "deterministic replay" `Quick
            test_serving_deterministic;
          Alcotest.test_case "malicious tenant contained" `Quick
            test_malicious_tenant_contained;
          Alcotest.test_case "served site recovers" `Quick
            test_served_sites_recover;
        ] );
    ]
