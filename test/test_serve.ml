(* Tests for the serving runtime: snapshot/restore fidelity, per-lane
   chaos determinism, the quarantine cap, the robustness policy pieces
   (breaker, backoff, restart-storm bucket), the discrete-event
   scheduler, and end-to-end serving invariants under chaos. *)

open Wasm

let value = Alcotest.testable Values.pp Values.equal

(* ------------------------------------------------------------------ *)
(* Builders (same shapes as test_supervisor)                            *)
(* ------------------------------------------------------------------ *)

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let module_of funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory = Some mem64;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let const_module =
  module_of [ (ft [] [ Types.I32 ], [], [ Ast.I32Const 41l ]) ]

let run_main sup inst = Cage.Supervisor.run sup inst "main" []

let finished_of = function
  | Cage.Supervisor.Finished vs -> vs
  | Cage.Supervisor.Crashed pm ->
      Alcotest.failf "unexpected crash: %s" pm.Cage.Supervisor.pm_message

let crash_of = function
  | Cage.Supervisor.Crashed pm -> pm
  | Cage.Supervisor.Finished _ -> Alcotest.fail "expected a crash"

(* A supervised MiniC guest under [cfg], serve-sized memory. *)
let minic_guest ?(seed = 11) cfg source =
  let m = Harness.Serve_bench.compile cfg source in
  let proc = Cage.Process.create ~config:cfg ~seed () in
  let sup = Cage.Supervisor.create ~fuel:2_000_000 proc in
  let imports, _ = Harness.Serve_bench.wasi_imports () in
  let inst = Cage.Supervisor.spawn ~imports sup m in
  (sup, inst)

(* ------------------------------------------------------------------ *)
(* Snapshot/restore fidelity                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.compute_source
  in
  let snap = Serve.Snapshot.capture inst in
  Alcotest.(check bool) "fresh instance matches its own snapshot" true
    (Serve.Snapshot.matches snap inst);
  let first = finished_of (run_main sup inst) in
  (* the run dirtied the heap (mallocs, tag draws, stores) *)
  Alcotest.(check bool) "running dirties the image" false
    (Serve.Snapshot.matches snap inst);
  Serve.Snapshot.restore snap inst;
  Alcotest.(check bool)
    "restore brings memory, tags, globals and table back byte-identical"
    true
    (Serve.Snapshot.matches snap inst);
  let second = finished_of (run_main sup inst) in
  Alcotest.(check (list value)) "restored instance replays the same result"
    first second

let test_snapshot_replay_is_exact () =
  (* without the PRNG rewind the second run would draw different irg
     tags; with it, N restore-run cycles all agree *)
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.compute_source
  in
  let snap = Serve.Snapshot.capture inst in
  let results =
    List.init 4 (fun _ ->
        Serve.Snapshot.restore snap inst;
        finished_of (run_main sup inst))
  in
  List.iter
    (fun r -> Alcotest.(check (list value)) "every replay identical" (List.hd results) r)
    results

let test_crashed_then_restored () =
  let sup, inst =
    minic_guest Cage.Config.full Harness.Serve_bench.malicious_source
  in
  let snap = Serve.Snapshot.capture inst in
  let pm1 = crash_of (run_main sup inst) in
  Serve.Snapshot.restore snap inst;
  Cage.Supervisor.release sup inst;
  let pm2 = crash_of (run_main sup inst) in
  Alcotest.(check string) "a restored crasher crashes identically"
    pm1.Cage.Supervisor.pm_message pm2.Cage.Supervisor.pm_message;
  Alcotest.(check bool) "and it really re-ran (not a quarantine refusal)"
    true
    (pm2.Cage.Supervisor.pm_class <> Cage.Supervisor.Quarantine)

(* ------------------------------------------------------------------ *)
(* Per-lane chaos streams: scheduling-order independence                *)
(* ------------------------------------------------------------------ *)

let lane_pol =
  Arch.Fault_inject.policy ~seed:99 ~probability:0.5 ~max_injections:1000
    [ Arch.Fault_inject.Tag_flip ]

(* Draw [n] times on [lane], recording the outcomes. *)
let draws_on lane n =
  Arch.Fault_inject.set_lane lane;
  List.init n (fun _ -> Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip)

let test_lane_streams_independent_of_interleaving () =
  (* sequential: all of lane 0, then all of lane 1 *)
  let e1 = Arch.Fault_inject.create lane_pol in
  let seq0, seq1 =
    Arch.Fault_inject.with_engine e1 (fun () ->
        let a = draws_on 0 40 in
        let b = draws_on 1 40 in
        (a, b))
  in
  (* interleaved: lanes alternate every 5 draws — as a pool scheduler
     bouncing between two slots would *)
  let e2 = Arch.Fault_inject.create lane_pol in
  let int0, int1 =
    Arch.Fault_inject.with_engine e2 (fun () ->
        let a = ref [] and b = ref [] in
        for _ = 1 to 8 do
          a := !a @ draws_on 0 5;
          b := !b @ draws_on 1 5
        done;
        (!a, !b))
  in
  Alcotest.(check (list bool)) "lane 0 stream unchanged by interleaving"
    seq0 int0;
  Alcotest.(check (list bool)) "lane 1 stream unchanged by interleaving"
    seq1 int1;
  Alcotest.(check bool) "lanes draw distinct streams" true (seq0 <> seq1);
  Alcotest.(check int) "per-lane charging matches"
    (Arch.Fault_inject.lane_count e1 0)
    (Arch.Fault_inject.lane_count e2 0)

let test_lane_budget_is_per_lane () =
  let pol =
    Arch.Fault_inject.policy ~seed:7 ~max_injections:2
      [ Arch.Fault_inject.Tag_flip ]
  in
  let e = Arch.Fault_inject.create pol in
  Arch.Fault_inject.with_engine e (fun () ->
      ignore (draws_on 0 10);
      ignore (draws_on 1 10));
  Alcotest.(check int) "lane 0 spent its own budget" 2
    (Arch.Fault_inject.lane_count e 0);
  Alcotest.(check int) "lane 1 spent its own budget" 2
    (Arch.Fault_inject.lane_count e 1);
  Alcotest.(check int) "total is the sum" 4 (Arch.Fault_inject.count e)

(* ------------------------------------------------------------------ *)
(* Quarantine cap                                                       *)
(* ------------------------------------------------------------------ *)

let test_quarantine_cap () =
  let proc =
    Cage.Process.create ~config:Cage.Config.baseline_wasm64 ~seed:3 ()
  in
  let sup = Cage.Supervisor.create ~max_quarantined:2 proc in
  let insts =
    List.init 5 (fun _ -> Cage.Supervisor.spawn sup const_module)
  in
  let metrics = Obs.Metrics.cage () in
  Obs.Hook.with_sink (Obs.Hook.make ~metrics ()) (fun () ->
      List.iter
        (fun inst ->
          ignore
            (crash_of
               (Cage.Supervisor.run_thunk sup inst (fun () ->
                    failwith "boom"))))
        insts);
  Alcotest.(check int) "retained post-mortems capped" 2
    (List.length (Cage.Supervisor.quarantined sup));
  (* the cap evicts records, never membership *)
  List.iter
    (fun inst ->
      Alcotest.(check bool) "every crasher still quarantined" true
        (Cage.Supervisor.is_quarantined sup inst))
    insts;
  Alcotest.(check int) "evictions counted" 3
    metrics.Obs.Metrics.quarantine_evicted.Obs.Metrics.c_value;
  (* newest records survive: the last crash is among the retained *)
  let last = List.nth insts 4 in
  Alcotest.(check bool) "newest post-mortem retained" true
    (List.exists
       (fun (id, _) -> id = last.Instance.id)
       (Cage.Supervisor.quarantined sup));
  Cage.Supervisor.release sup last;
  Alcotest.(check bool) "release clears membership" false
    (Cage.Supervisor.is_quarantined sup last)

(* ------------------------------------------------------------------ *)
(* Policy: breaker, backoff, restart-storm bucket                       *)
(* ------------------------------------------------------------------ *)

let test_breaker_lifecycle () =
  let b =
    Serve.Policy.breaker_create
      { Serve.Policy.trip_after = 3; cooldown = 100 }
  in
  Alcotest.(check bool) "closed admits" true
    (Serve.Policy.breaker_admits b ~now:0);
  Alcotest.(check bool) "first crashes do not trip" false
    (Serve.Policy.breaker_crash b ~now:1);
  ignore (Serve.Policy.breaker_crash b ~now:2);
  Alcotest.(check bool) "third consecutive crash trips" true
    (Serve.Policy.breaker_crash b ~now:3);
  Alcotest.(check bool) "open sheds" false
    (Serve.Policy.breaker_admits b ~now:50);
  Alcotest.(check bool) "after cooldown the half-open probe admits" true
    (Serve.Policy.breaker_admits b ~now:150);
  Alcotest.(check bool) "probe failure re-opens (and counts as a trip)" true
    (Serve.Policy.breaker_crash b ~now:151);
  Alcotest.(check bool) "re-opened sheds again" false
    (Serve.Policy.breaker_admits b ~now:200);
  ignore (Serve.Policy.breaker_admits b ~now:300);
  Serve.Policy.breaker_success b;
  Alcotest.(check bool) "probe success closes" true
    (Serve.Policy.breaker_admits b ~now:301);
  Alcotest.(check int) "two trips recorded" 2 (Serve.Policy.breaker_trips b)

let test_breaker_success_resets_run () =
  let b =
    Serve.Policy.breaker_create
      { Serve.Policy.trip_after = 3; cooldown = 100 }
  in
  ignore (Serve.Policy.breaker_crash b ~now:1);
  ignore (Serve.Policy.breaker_crash b ~now:2);
  Serve.Policy.breaker_success b;
  Alcotest.(check bool) "a success interrupts the crash run" false
    (Serve.Policy.breaker_crash b ~now:3);
  Alcotest.(check int) "no trips" 0 (Serve.Policy.breaker_trips b)

let test_backoff_shape () =
  let r =
    { Serve.Policy.max_attempts = 5; backoff_base = 100; backoff_factor = 2;
      backoff_cap = 500; jitter = 0 }
  in
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check int) "first retry waits the base" 100
    (Serve.Policy.backoff r rng ~attempt:1);
  Alcotest.(check int) "second doubles" 200
    (Serve.Policy.backoff r rng ~attempt:2);
  Alcotest.(check int) "growth is capped" 500
    (Serve.Policy.backoff r rng ~attempt:5);
  let j = { r with Serve.Policy.jitter = 50 } in
  let d = Serve.Policy.backoff j rng ~attempt:1 in
  Alcotest.(check bool) "jitter stays within its bound" true
    (d >= 100 && d < 150)

let test_bucket_rate_limits () =
  let b = Serve.Policy.bucket_create ~capacity:2 ~refill_every:100 in
  Alcotest.(check bool) "token 1" true (Serve.Policy.bucket_take b ~now:0);
  Alcotest.(check bool) "token 2" true (Serve.Policy.bucket_take b ~now:0);
  Alcotest.(check bool) "bucket empty: the restart storm is stopped" false
    (Serve.Policy.bucket_take b ~now:50);
  Alcotest.(check bool) "a refill period restores one token" true
    (Serve.Policy.bucket_take b ~now:120);
  Alcotest.(check bool) "but only one" false
    (Serve.Policy.bucket_take b ~now:130);
  Alcotest.(check bool) "refill never exceeds capacity" true
    (Serve.Policy.bucket_take b ~now:10_000);
  Alcotest.(check bool) "capacity is 2" true
    (Serve.Policy.bucket_take b ~now:10_000);
  Alcotest.(check bool) "not 3" false (Serve.Policy.bucket_take b ~now:10_000)

let test_retryable_classes () =
  let open Cage.Supervisor in
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (fault_class_to_string cls ^ " retries") true
        (Serve.Policy.retryable cls))
    [ Tag_fault; Deferred_tag_fault; Pac_auth; Bounds; Fuel; Host_error ];
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (fault_class_to_string cls ^ " never retries") false
        (Serve.Policy.retryable cls))
    [ Stack; Unreachable; Guest_trap; Quarantine ]

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let test_heap_order_and_ties () =
  let h = Serve.Scheduler.Heap.create () in
  Serve.Scheduler.Heap.push h ~time:30 "c";
  Serve.Scheduler.Heap.push h ~time:10 "a1";
  Serve.Scheduler.Heap.push h ~time:10 "a2";
  Serve.Scheduler.Heap.push h ~time:20 "b";
  let order =
    List.init 4 (fun _ ->
        match Serve.Scheduler.Heap.pop h with
        | Some (_, v) -> v
        | None -> Alcotest.fail "heap empty early")
  in
  Alcotest.(check (list string))
    "time order, ties broken by insertion sequence"
    [ "a1"; "a2"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Serve.Scheduler.Heap.is_empty h)

let test_fuel_sliced_round_robin () =
  let cpu = Serve.Scheduler.create ~cores:1 ~quantum:10 in
  Serve.Scheduler.submit cpu "long" ~demand:25;
  Serve.Scheduler.submit cpu "short" ~demand:5;
  let h = Serve.Scheduler.Heap.create () in
  let completions = ref [] in
  (match Serve.Scheduler.dispatch cpu ~now:0 with
  | Some s -> Serve.Scheduler.Heap.push h ~time:s.Serve.Scheduler.s_end (`S s)
  | None -> Alcotest.fail "core should dispatch");
  let rec drain () =
    match Serve.Scheduler.Heap.pop h with
    | None -> ()
    | Some (now, `S s) ->
        (match Serve.Scheduler.slice_done cpu s with
        | Some payload -> completions := (payload, now) :: !completions
        | None -> ());
        let rec refill () =
          match Serve.Scheduler.dispatch cpu ~now with
          | Some s' ->
              Serve.Scheduler.Heap.push h ~time:s'.Serve.Scheduler.s_end (`S s');
              refill ()
          | None -> ()
        in
        refill ();
        drain ()
  in
  drain ();
  (* long runs 10, short runs 5 to completion, long 10, long 5:
     short completes at t=15, long at t=30 — the quantum kept the
     short request from waiting out the long one *)
  Alcotest.(check (list (pair string int)))
    "slice interleaving lets the short request finish first"
    [ ("short", 15); ("long", 30) ]
    (List.rev !completions)

(* ------------------------------------------------------------------ *)
(* End-to-end serving invariants                                        *)
(* ------------------------------------------------------------------ *)

let mini_config requests seed =
  { Serve.Server.default_config with Serve.Server.requests; seed; slots = 2 }

let test_serving_accounting_conserves () =
  let report =
    Serve.Server.run
      ~chaos:(Harness.Serve_bench.chaos_policy ~seed:5)
      (mini_config 300 5)
      (Harness.Serve_bench.tenants ~seed:5 ())
  in
  List.iter
    (fun (tr : Serve.Server.tenant_report) ->
      Alcotest.(check int)
        (tr.Serve.Server.tr_name ^ ": ok + failed + shed = requests")
        tr.Serve.Server.tr_requests
        (tr.Serve.Server.tr_ok + tr.Serve.Server.tr_failed
        + tr.Serve.Server.tr_shed))
    report.Serve.Server.rp_tenants;
  Alcotest.(check int) "totals conserve too" report.Serve.Server.rp_requests
    (report.Serve.Server.rp_ok + report.Serve.Server.rp_failed
    + report.Serve.Server.rp_shed);
  Alcotest.(check int) "nothing escaped" 0 report.Serve.Server.rp_escaped

let test_serving_deterministic () =
  let go () =
    let r =
      Serve.Server.run
        ~chaos:(Harness.Serve_bench.chaos_policy ~seed:9)
        (mini_config 250 9)
        (Harness.Serve_bench.tenants ~seed:9 ())
    in
    ( r.Serve.Server.rp_ok, r.Serve.Server.rp_failed, r.Serve.Server.rp_shed,
      r.Serve.Server.rp_crashes, r.Serve.Server.rp_retries,
      r.Serve.Server.rp_makespan, r.Serve.Server.rp_p99,
      r.Serve.Server.rp_injections )
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "two chaos-on runs replay identically" true (a = b)

let test_malicious_tenant_contained () =
  let report =
    Serve.Server.run (mini_config 300 11)
      (Harness.Serve_bench.tenants ~seed:11 ())
  in
  let tr name =
    match Serve.Server.tenant_of report name with
    | Some t -> t
    | None -> Alcotest.failf "missing tenant %s" name
  in
  Alcotest.(check bool) "malicious tenant crashed" true
    ((tr "malicious").Serve.Server.tr_crashes > 0);
  Alcotest.(check int) "malicious tenant never succeeds" 0
    (tr "malicious").Serve.Server.tr_ok;
  Alcotest.(check bool) "its breaker tripped" true
    ((tr "malicious").Serve.Server.tr_breaker_trips > 0);
  (* chaos is off: the well-behaved neighbours are untouched *)
  List.iter
    (fun name ->
      let t = tr name in
      Alcotest.(check int)
        (name ^ " loses nothing to the noisy neighbour")
        t.Serve.Server.tr_requests t.Serve.Server.tr_ok)
    [ "compute"; "fuzz" ]

(* ------------------------------------------------------------------ *)
(* Heap tie-breaking as a property                                      *)
(* ------------------------------------------------------------------ *)

(* The DES heap's determinism rests on lexicographic (time, seq)
   ordering: equal-time entries MUST dequeue in push order, whatever
   the push pattern. The unit test above pins one shape; this pins
   them all. *)
let prop_heap_ties_fifo =
  QCheck.Test.make ~name:"equal-time entries dequeue in push order"
    ~count:300
    QCheck.(list_of_size Gen.(0 -- 64) (int_bound 4))
    (fun times ->
      let h = Serve.Scheduler.Heap.create () in
      List.iteri
        (fun i time -> Serve.Scheduler.Heap.push h ~time (time, i))
        times;
      let rec drain acc =
        match Serve.Scheduler.Heap.pop h with
        | None -> List.rev acc
        | Some (t, (t', i)) -> drain ((t, t', i) :: acc)
      in
      let out = drain [] in
      List.length out = List.length times
      && List.for_all (fun (t, t', _) -> t = t') out
      && (* popped (time, push-index) keys are lexicographically sorted:
            time order overall, FIFO within each tie class *)
      let keys = List.map (fun (t, _, i) -> (t, i)) out in
      keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Exact percentiles                                                    *)
(* ------------------------------------------------------------------ *)

let test_percentile_exact_pinned () =
  (* 1..100: nearest-rank pN is exactly N *)
  let a = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50 of 1..100" 50 (Serve.Slo.percentile_exact a 50.0);
  Alcotest.(check int) "p99 of 1..100" 99 (Serve.Slo.percentile_exact a 99.0);
  Alcotest.(check int) "p1 of 1..100" 1 (Serve.Slo.percentile_exact a 1.0);
  Alcotest.(check int) "p100 of 1..100" 100
    (Serve.Slo.percentile_exact a 100.0);
  Alcotest.(check int) "empty sample" 0 (Serve.Slo.percentile_exact [||] 99.0);
  (* odd size with duplicates: rank ceil(0.5*5)=3 -> third value *)
  let b = [| 2; 2; 3; 7; 11 |] in
  Alcotest.(check int) "p50 of 5" 3 (Serve.Slo.percentile_exact b 50.0);
  Alcotest.(check int) "p90 of 5" 11 (Serve.Slo.percentile_exact b 90.0)

(* ------------------------------------------------------------------ *)
(* SLO burn rates                                                       *)
(* ------------------------------------------------------------------ *)

let test_burn_rates () =
  let co = Serve.Slo.collector () in
  (* 100 samples at cycles 1..100, failing at 50 and 100: 2% error
     rate against a 1% budget is exactly a 2x burn *)
  for i = 1 to 100 do
    let ok = i mod 50 <> 0 in
    Serve.Slo.sample co ~tenant:"t" ~now:i ~ok
      ~latency:(if ok then 100 else -1)
  done;
  let m = Serve.Slo.monitor co "t" in
  let obj = Serve.Slo.default_objective in
  let ab, lb = Serve.Slo.burn_rates m obj ~now:100 ~window:100 in
  Alcotest.(check (float 1e-9)) "availability burn 2x over the full window"
    2.0 ab;
  Alcotest.(check (float 1e-9)) "all ok samples fast: latency burn 0" 0.0 lb;
  (* failures older than the lookback fall out of the window: a tenant
     that failed early but ran clean since burns nothing now *)
  for i = 1 to 100 do
    let ok = i > 2 in
    Serve.Slo.sample co ~tenant:"recovered" ~now:i ~ok
      ~latency:(if ok then 100 else -1)
  done;
  let mr = Serve.Slo.monitor co "recovered" in
  let ab2, _ = Serve.Slo.burn_rates mr obj ~now:100 ~window:50 in
  Alcotest.(check (float 1e-9)) "old failures age out of the window" 0.0 ab2;
  let ab2', _ = Serve.Slo.burn_rates mr obj ~now:100 ~window:100 in
  Alcotest.(check (float 1e-9)) "but still burn over the full window" 2.0
    ab2';
  (* latency objective: 10% of ok samples over threshold against a 5%
     budget is a 2x latency burn *)
  for i = 1 to 100 do
    Serve.Slo.sample co ~tenant:"lat" ~now:i ~ok:true
      ~latency:(if i mod 10 = 0 then obj.Serve.Slo.ob_latency + 1 else 100)
  done;
  let ml = Serve.Slo.monitor co "lat" in
  let ab3, lb3 = Serve.Slo.burn_rates ml obj ~now:100 ~window:100 in
  Alcotest.(check (float 1e-9)) "all ok: availability burn 0" 0.0 ab3;
  Alcotest.(check (float 1e-9)) "latency burn 2x" 2.0 lb3;
  (* empty window burns 0, not NaN *)
  let ab4, lb4 = Serve.Slo.burn_rates ml obj ~now:1_000_000 ~window:10 in
  Alcotest.(check (float 1e-9)) "empty window avail burn" 0.0 ab4;
  Alcotest.(check (float 1e-9)) "empty window latency burn" 0.0 lb4

(* ------------------------------------------------------------------ *)
(* Phase attribution: exact, conserved, reconciled                      *)
(* ------------------------------------------------------------------ *)

let test_phase_attribution_exact () =
  let co = Serve.Slo.collector () in
  let report =
    Serve.Server.run
      ~chaos:(Harness.Serve_bench.chaos_policy ~seed:5)
      ~collect:co (mini_config 300 5)
      (Harness.Serve_bench.tenants ~seed:5 ())
  in
  let recs = Serve.Slo.records co in
  Alcotest.(check int) "one record per terminated request"
    report.Serve.Server.rp_requests (List.length recs);
  let oks = List.filter (fun r -> r.Serve.Slo.rr_ok) recs in
  Alcotest.(check bool) "some requests succeeded" true (oks <> []);
  List.iter
    (fun (r : Serve.Slo.req_rec) ->
      Alcotest.(check int)
        (Printf.sprintf
           "request %d: latency = queue + restore + exec + retry + drain"
           r.Serve.Slo.rr_id)
        r.Serve.Slo.rr_latency
        (r.Serve.Slo.rr_queue + r.Serve.Slo.rr_restore + r.Serve.Slo.rr_exec
        + r.Serve.Slo.rr_retry + r.Serve.Slo.rr_drain))
    oks;
  (* every metered guest cycle the pools served shows up in exactly
     one attribution bucket *)
  Alcotest.(check int) "exec cycles reconcile against the pool meters"
    report.Serve.Server.rp_served_cycles
    (Serve.Slo.exec_cycles co);
  (* the report's exact percentiles recompute from the records *)
  let lat =
    Array.of_list (List.map (fun r -> r.Serve.Slo.rr_latency) oks)
  in
  Array.sort compare lat;
  Alcotest.(check int) "rp_p99_exact recomputes from the record stream"
    (Serve.Slo.percentile_exact lat 99.0)
    report.Serve.Server.rp_p99_exact;
  Alcotest.(check int) "rp_p50_exact recomputes from the record stream"
    (Serve.Slo.percentile_exact lat 50.0)
    report.Serve.Server.rp_p50_exact;
  (* the tail table is a partition of the slow slice: per-tenant rows
     sum to the (all) row, phase by phase *)
  let t = Serve.Slo.tail co ~pct:99.0 in
  let rows, all =
    match List.rev t.Serve.Slo.tt_rows with
    | total :: rest -> (List.rev rest, total)
    | [] -> Alcotest.fail "tail table empty"
  in
  let sum f = List.fold_left (fun n r -> n + f r) 0 rows in
  Alcotest.(check string) "total row label" "(all)" all.Serve.Slo.tl_tenant;
  Alcotest.(check int) "tail rows partition queue"
    all.Serve.Slo.tl_queue (sum (fun r -> r.Serve.Slo.tl_queue));
  Alcotest.(check int) "tail rows partition exec"
    all.Serve.Slo.tl_exec (sum (fun r -> r.Serve.Slo.tl_exec));
  Alcotest.(check int) "tail rows partition total"
    all.Serve.Slo.tl_total (sum (fun r -> r.Serve.Slo.tl_total))

(* ------------------------------------------------------------------ *)
(* Fault -> request correlation                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_correlation () =
  let co = Serve.Slo.collector () in
  let report =
    Serve.Server.run
      ~chaos:(Harness.Serve_bench.chaos_policy ~seed:5)
      ~collect:co (mini_config 300 5)
      (Harness.Serve_bench.tenants ~seed:5 ())
  in
  let hits = Serve.Slo.hits co in
  Alcotest.(check bool) "chaos injections landed in requests" true
    (hits <> []);
  Alcotest.(check bool) "no more hit reports than injections" true
    (List.length hits <= report.Serve.Server.rp_injections);
  List.iter
    (fun (h : Serve.Slo.hit) ->
      Alcotest.(check bool) "request id is a real arrival" true
        (h.Serve.Slo.ht_request >= 0
        && h.Serve.Slo.ht_request < report.Serve.Server.rp_requests);
      Alcotest.(check bool) "at least one site named" true
        (h.Serve.Slo.ht_sites <> []);
      Alcotest.(check bool) "attempts counted" true
        (h.Serve.Slo.ht_attempts >= 1);
      Alcotest.(check bool) "induced cost is non-negative" true
        (h.Serve.Slo.ht_cost >= 0))
    hits;
  (* a contained hit means the request still terminated ok after
     retries: it must have used more than one attempt *)
  List.iter
    (fun (h : Serve.Slo.hit) ->
      if h.Serve.Slo.ht_contained then
        Alcotest.(check bool) "containment implies a retry happened" true
          (h.Serve.Slo.ht_attempts >= 1))
    hits

(* ------------------------------------------------------------------ *)
(* Span stitching end-to-end                                            *)
(* ------------------------------------------------------------------ *)

let test_span_stitching_e2e () =
  let run () =
    Serve.Server.run
      ~chaos:(Harness.Serve_bench.chaos_policy ~seed:9)
      (mini_config 250 9)
      (Harness.Serve_bench.tenants ~seed:9 ())
  in
  let digest (r : Serve.Server.report) =
    ( r.Serve.Server.rp_ok, r.Serve.Server.rp_failed, r.Serve.Server.rp_shed,
      r.Serve.Server.rp_crashes, r.Serve.Server.rp_retries,
      r.Serve.Server.rp_makespan, r.Serve.Server.rp_p99,
      r.Serve.Server.rp_injections )
  in
  let bare = run () in
  let rec_ = Obs.Span.create () in
  let traced = Obs.Span.with_recorder rec_ run in
  (* observation must not perturb the simulation: bit-identical run *)
  Alcotest.(check bool) "recorder does not perturb the replay" true
    (digest bare = digest traced);
  let json = Obs.Span.to_chrome_json rec_ in
  let has s = Astring.String.is_infix ~affix:s json in
  (* one retried request's causal chain: flow start on its first queue
     slice, steps across scheduler slices, finish at the terminal *)
  Alcotest.(check bool) "flow arrows start" true (has "\"ph\":\"s\"");
  Alcotest.(check bool) "flow arrows step" true (has "\"ph\":\"t\"");
  Alcotest.(check bool) "flow arrows finish" true (has "\"ph\":\"f\"");
  Alcotest.(check bool) "request envelopes open/close" true
    (has "\"ph\":\"b\"" && has "\"ph\":\"e\"");
  Alcotest.(check bool) "queue phase present" true (has "\"name\":\"queue\"");
  Alcotest.(check bool) "restore phase present" true
    (has "\"name\":\"restore\"");
  Alcotest.(check bool) "retry instants present under chaos" true
    (has "\"name\":\"retry\"");
  Alcotest.(check bool) "backoff slices present under chaos" true
    (has "\"name\":\"backoff\"");
  Alcotest.(check bool) "per-core tracks named" true
    (has "\"name\":\"core 0\"");
  Alcotest.(check bool) "per-tenant tracks named" true
    (has "\"name\":\"tenant compute\"")

let test_served_sites_recover () =
  (* the serving path absorbs a single-shot tag flip: crash, retry on
     a pristine snapshot, succeed *)
  let cell =
    Harness.Serve_bench.served_cell ~engine:Wasm.Instance.Threaded
      ~full:false ~seed:7 ~index:1
      Arch.Fault_inject.Tag_flip Arch.Mte.Sync
  in
  Alcotest.(check string) "tag-flip x sync recovers through serving"
    "recovered" cell

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip fidelity" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "replay exact" `Quick test_snapshot_replay_is_exact;
          Alcotest.test_case "crashed then restored" `Quick
            test_crashed_then_restored;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "interleaving independence" `Quick
            test_lane_streams_independent_of_interleaving;
          Alcotest.test_case "budget per lane" `Quick test_lane_budget_is_per_lane;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "cap + eviction metric" `Quick test_quarantine_cap ]
      );
      ( "policy",
        [
          Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "breaker success resets" `Quick
            test_breaker_success_resets_run;
          Alcotest.test_case "backoff shape" `Quick test_backoff_shape;
          Alcotest.test_case "restart-storm bucket" `Quick test_bucket_rate_limits;
          Alcotest.test_case "retryable classes" `Quick test_retryable_classes;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "heap order + ties" `Quick test_heap_order_and_ties;
          Alcotest.test_case "fuel-sliced round robin" `Quick
            test_fuel_sliced_round_robin;
          QCheck_alcotest.to_alcotest prop_heap_ties_fifo;
        ] );
      ( "slo",
        [
          Alcotest.test_case "exact percentiles pinned" `Quick
            test_percentile_exact_pinned;
          Alcotest.test_case "burn rates" `Quick test_burn_rates;
          Alcotest.test_case "phase attribution exact" `Quick
            test_phase_attribution_exact;
          Alcotest.test_case "fault -> request correlation" `Quick
            test_fault_correlation;
        ] );
      ( "server",
        [
          Alcotest.test_case "accounting conserves" `Quick
            test_serving_accounting_conserves;
          Alcotest.test_case "deterministic replay" `Quick
            test_serving_deterministic;
          Alcotest.test_case "malicious tenant contained" `Quick
            test_malicious_tenant_contained;
          Alcotest.test_case "served site recovers" `Quick
            test_served_sites_recover;
          Alcotest.test_case "span stitching e2e" `Quick
            test_span_stitching_e2e;
        ] );
    ]
