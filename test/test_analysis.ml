(* Tests for the whole-module tag-safety analyzer (cage-lint) and the
   check-elision plan it derives. *)

module I = Analysis.Interval

let iv = Alcotest.testable (fun ppf (t : I.t) ->
    let b = function Some v -> Int64.to_string v | None -> "_" in
    Format.fprintf ppf "[%s,%s]" (b t.I.lo) (b t.I.hi))
    I.equal

(* ------------------------------------------------------------------ *)
(* Interval arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  Alcotest.(check iv) "add" (I.range 3L 7L) (I.add (I.range 1L 2L) (I.range 2L 5L));
  Alcotest.(check iv) "sub" (I.range (-4L) 0L)
    (I.sub (I.range 1L 2L) (I.range 2L 5L));
  Alcotest.(check iv) "mul nonneg" (I.range 0L 10L)
    (I.mul (I.range 0L 2L) (I.range 0L 5L));
  Alcotest.(check iv) "mul mixed signs is top" I.top
    (I.mul (I.range (-2L) 2L) (I.range 0L 5L));
  Alcotest.(check iv) "join" (I.range 0L 9L) (I.join (I.range 0L 2L) (I.range 7L 9L));
  Alcotest.(check (option iv)) "meet" (Some (I.range 2L 5L))
    (I.meet (I.range 0L 5L) (I.range 2L 9L));
  Alcotest.(check (option iv)) "empty meet" None
    (I.meet (I.range 0L 1L) (I.range 5L 9L))

let test_interval_widen () =
  (* widening drops the moving bound to infinity, keeps the stable one *)
  let w = I.widen ~prev:(I.range 0L 4L) ~next:(I.range 0L 8L) in
  Alcotest.(check iv) "hi widens" (I.of_bounds (Some 0L) None) w;
  let w = I.widen ~prev:(I.range 0L 4L) ~next:(I.range 0L 4L) in
  Alcotest.(check iv) "stable stays" (I.range 0L 4L) w

let test_interval_overflow_safe () =
  (* bound arithmetic near Int64 extremes must go to top, not wrap *)
  let huge = I.const Int64.max_int in
  let r = I.add huge (I.const 1L) in
  Alcotest.(check bool) "overflowing add has no finite hi" true (r.I.hi = None);
  Alcotest.(check (option int64)) "exact add detects overflow" None
    (I.add_exact Int64.max_int 1L)

let test_interval_bitops () =
  (* logand with a nonneg constant mask is bounded by the mask *)
  let m = I.logand I.top (I.const 0xffL) in
  Alcotest.(check bool) "mask bounds result" true
    (I.is_nonneg m && match m.I.hi with Some h -> h <= 0xffL | None -> false);
  let u = I.rem_u I.top (I.const 8L) in
  Alcotest.(check bool) "rem_u bounded" true
    (I.is_nonneg u && match u.I.hi with Some h -> h <= 7L | None -> false)

(* ------------------------------------------------------------------ *)
(* Whole-module lint                                                   *)
(* ------------------------------------------------------------------ *)

let compile ?(cfg = Cage.Config.mem_safety) source =
  let opts = Minic.Driver.options_of_config cfg in
  let prelude = Libc.Source.prelude_of_config cfg in
  (Minic.Driver.compile ~opts ~prelude source).Minic.Driver.co_module

let lint ?cfg source = Analysis.Lint.run (compile ?cfg source)

let test_cve_suite_all_flagged () =
  (* every Table 2 known-bad pattern must produce at least one
     diagnostic before execution *)
  List.iter
    (fun (e : Workloads.Cve_suite.entry) ->
      let t = lint e.source in
      if Analysis.Lint.clean t then
        Alcotest.failf "%s: no diagnostics for a known-bad program" e.cve)
    Workloads.Cve_suite.entries

let test_cve_uaf_definite () =
  (* the three UAF recreations are statically definite *)
  List.iter
    (fun cve ->
      let e =
        List.find
          (fun (e : Workloads.Cve_suite.entry) -> e.cve = cve)
          Workloads.Cve_suite.entries
      in
      let t = lint e.Workloads.Cve_suite.source in
      Alcotest.(check bool)
        (cve ^ " has a definite diagnostic")
        true (t.Analysis.Lint.definite >= 1))
    [ "CVE-2021-22940"; "CVE-2021-33574"; "CVE-2020-1752"; "CVE-2019-11932" ]

let test_polybench_clean () =
  (* correct programs: zero diagnostics, nonzero elision *)
  List.iter
    (fun (k : Workloads.Polybench.kernel) ->
      let t = lint k.k_source in
      if not (Analysis.Lint.clean t) then
        Alcotest.failf "%s: spurious diagnostics:@ %s" k.k_name
          (String.concat "\n" (Analysis.Lint.to_lines t));
      if t.Analysis.Lint.elide_proven = 0 then
        Alcotest.failf "%s: no access proven elidable" k.k_name)
    Workloads.Polybench.all

let test_quickstart_one_bug () =
  (* tests run from _build/default/test; walk up until the example is
     found so this works from the source tree too *)
  let rec find dir n =
    let p = Filename.concat dir "examples/quickstart.c" in
    if Sys.file_exists p then p
    else if n = 0 then Alcotest.fail "examples/quickstart.c not found"
    else find (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  let source =
    In_channel.with_open_text (find Filename.current_dir_name 6)
      In_channel.input_all
  in
  let t = lint source in
  Alcotest.(check int) "exactly one diagnostic" 1
    (List.length t.Analysis.Lint.diags);
  Alcotest.(check int) "it is possible, not definite" 1
    t.Analysis.Lint.possible

(* ------------------------------------------------------------------ *)
(* Elision                                                             *)
(* ------------------------------------------------------------------ *)

let test_elide_plan_nonempty () =
  let m = compile (List.hd Workloads.Polybench.all).Workloads.Polybench.k_source in
  let p = Analysis.Elide.plan m in
  Alcotest.(check bool) "some accesses proven" true (p.Analysis.Elide.proven > 0);
  Alcotest.(check bool) "proven <= considered" true
    (p.Analysis.Elide.proven <= p.Analysis.Elide.considered)

let test_elide_differential () =
  (* a small in-process slice of the 200-seed CI gate *)
  let r = Harness.Elide_diff.run ~count:8 ~seed0:3000 () in
  if not (Harness.Elide_diff.ok r) then
    Alcotest.failf "elision diverged:@ %s"
      (String.concat "\n" r.Harness.Elide_diff.ed_failures);
  Alcotest.(check bool) "checks actually elided" true
    (r.Harness.Elide_diff.ed_elided > 0)

let test_elide_preserves_trap () =
  (* a program with a real bug must still trap identically with
     elision on: the analyzer only elides proven-safe accesses *)
  let source =
    {|
      int main() {
        long *p = (long*)malloc(32);
        p[0] = 1;
        free(p);
        return (int)p[0];  /* UAF: must tag-fault either way */
      }
    |}
  in
  let trap_of cfg =
    match Libc.Run.run ~cfg source with
    | _ -> None
    | exception Wasm.Instance.Trap msg -> Some msg
  in
  let plain = trap_of Cage.Config.mem_safety in
  let elided = trap_of (Cage.Config.with_elision Cage.Config.mem_safety) in
  (* allocation-tag numbers in the message vary with the global tag
     draw, so compare the fault class, not the exact rendering *)
  let is_tag_fault = function
    | Some msg -> Astring.String.is_infix ~affix:"tag fault" msg
    | None -> false
  in
  Alcotest.(check bool) "baseline tag-faults" true (is_tag_fault plain);
  Alcotest.(check bool) "elided run tag-faults too" true (is_tag_fault elided)

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "analysis"
    [
      ( "interval",
        [
          tc "basics" test_interval_basics;
          tc "widening" test_interval_widen;
          tc "overflow safe" test_interval_overflow_safe;
          tc "bit operations" test_interval_bitops;
        ] );
      ( "lint",
        [
          tc "cve suite all flagged" test_cve_suite_all_flagged;
          tc "uaf entries definite" test_cve_uaf_definite;
          tc "polybench clean" test_polybench_clean;
          tc "quickstart one bug" test_quickstart_one_bug;
        ] );
      ( "elision",
        [
          tc "plan nonempty" test_elide_plan_nonempty;
          tc "differential slice" test_elide_differential;
          tc "trap preserved" test_elide_preserves_trap;
        ] );
    ]
