(* Tests for the whole-module tag-safety analyzer (cage-lint) and the
   check-elision plan it derives. *)

module I = Analysis.Interval

let iv = Alcotest.testable (fun ppf (t : I.t) ->
    let b = function Some v -> Int64.to_string v | None -> "_" in
    Format.fprintf ppf "[%s,%s]" (b t.I.lo) (b t.I.hi))
    I.equal

(* ------------------------------------------------------------------ *)
(* Interval arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  Alcotest.(check iv) "add" (I.range 3L 7L) (I.add (I.range 1L 2L) (I.range 2L 5L));
  Alcotest.(check iv) "sub" (I.range (-4L) 0L)
    (I.sub (I.range 1L 2L) (I.range 2L 5L));
  Alcotest.(check iv) "mul nonneg" (I.range 0L 10L)
    (I.mul (I.range 0L 2L) (I.range 0L 5L));
  Alcotest.(check iv) "mul mixed signs is top" I.top
    (I.mul (I.range (-2L) 2L) (I.range 0L 5L));
  Alcotest.(check iv) "join" (I.range 0L 9L) (I.join (I.range 0L 2L) (I.range 7L 9L));
  Alcotest.(check (option iv)) "meet" (Some (I.range 2L 5L))
    (I.meet (I.range 0L 5L) (I.range 2L 9L));
  Alcotest.(check (option iv)) "empty meet" None
    (I.meet (I.range 0L 1L) (I.range 5L 9L))

let test_interval_widen () =
  (* widening drops the moving bound to infinity, keeps the stable one *)
  let w = I.widen ~prev:(I.range 0L 4L) ~next:(I.range 0L 8L) in
  Alcotest.(check iv) "hi widens" (I.of_bounds (Some 0L) None) w;
  let w = I.widen ~prev:(I.range 0L 4L) ~next:(I.range 0L 4L) in
  Alcotest.(check iv) "stable stays" (I.range 0L 4L) w

let test_interval_overflow_safe () =
  (* bound arithmetic near Int64 extremes must go to top, not wrap *)
  let huge = I.const Int64.max_int in
  let r = I.add huge (I.const 1L) in
  Alcotest.(check bool) "overflowing add has no finite hi" true (r.I.hi = None);
  Alcotest.(check (option int64)) "exact add detects overflow" None
    (I.add_exact Int64.max_int 1L)

let test_interval_saturation () =
  (* the overflow-boundary regressions: bound steps at the Int64
     extremes must saturate to infinity, never wrap *)
  Alcotest.(check (option int64)) "succ_sat saturates" None
    (I.succ_sat Int64.max_int);
  Alcotest.(check (option int64)) "succ_sat steps" (Some 6L) (I.succ_sat 5L);
  Alcotest.(check (option int64)) "pred_sat saturates" None
    (I.pred_sat Int64.min_int);
  Alcotest.(check (option int64)) "pred_sat steps" (Some 4L) (I.pred_sat 5L);
  (* add near max_int: hi blows to +oo, lo stays exact *)
  let r = I.add (I.range 1L Int64.max_int) (I.const 1L) in
  Alcotest.(check iv) "add saturates hi only" (I.of_bounds (Some 2L) None) r;
  (* mul near max_int: a wrapped product must not appear as a bound *)
  let r = I.mul (I.range 2L Int64.max_int) (I.const 2L) in
  Alcotest.(check iv) "mul saturates hi only" (I.of_bounds (Some 4L) None) r;
  (* widening of [k, max_int]-shaped intervals: a stable extreme bound
     is kept, a moving one goes to infinity — no wraparound either way *)
  let w =
    I.widen ~prev:(I.range 0L Int64.max_int) ~next:(I.range 0L Int64.max_int)
  in
  Alcotest.(check iv) "stable [0,max_int] stays" (I.range 0L Int64.max_int) w;
  let w = I.widen ~prev:(I.range 0L 4L) ~next:(I.range 0L Int64.max_int) in
  Alcotest.(check iv) "bound moving to max_int widens" (I.of_bounds (Some 0L) None) w;
  let w =
    I.widen ~prev:(I.range Int64.min_int 4L) ~next:(I.range Int64.min_int 4L)
  in
  Alcotest.(check iv) "stable [min_int,4] stays" (I.range Int64.min_int 4L) w

let test_interval_bitops () =
  (* logand with a nonneg constant mask is bounded by the mask *)
  let m = I.logand I.top (I.const 0xffL) in
  Alcotest.(check bool) "mask bounds result" true
    (I.is_nonneg m && match m.I.hi with Some h -> h <= 0xffL | None -> false);
  let u = I.rem_u I.top (I.const 8L) in
  Alcotest.(check bool) "rem_u bounded" true
    (I.is_nonneg u && match u.I.hi with Some h -> h <= 7L | None -> false)

(* ------------------------------------------------------------------ *)
(* Whole-module lint                                                   *)
(* ------------------------------------------------------------------ *)

let compile ?(cfg = Cage.Config.mem_safety) source =
  let opts = Minic.Driver.options_of_config cfg in
  let prelude = Libc.Source.prelude_of_config cfg in
  (Minic.Driver.compile ~opts ~prelude source).Minic.Driver.co_module

let lint ?cfg source = Analysis.Lint.run (compile ?cfg source)

let test_cve_suite_all_flagged () =
  (* every Table 2 known-bad pattern must produce at least one
     diagnostic before execution *)
  List.iter
    (fun (e : Workloads.Cve_suite.entry) ->
      let t = lint e.source in
      if Analysis.Lint.clean t then
        Alcotest.failf "%s: no diagnostics for a known-bad program" e.cve)
    Workloads.Cve_suite.entries

let test_cve_uaf_definite () =
  (* the three UAF recreations are statically definite *)
  List.iter
    (fun cve ->
      let e =
        List.find
          (fun (e : Workloads.Cve_suite.entry) -> e.cve = cve)
          Workloads.Cve_suite.entries
      in
      let t = lint e.Workloads.Cve_suite.source in
      Alcotest.(check bool)
        (cve ^ " has a definite diagnostic")
        true (t.Analysis.Lint.definite >= 1))
    [ "CVE-2021-22940"; "CVE-2021-33574"; "CVE-2020-1752"; "CVE-2019-11932" ]

let test_polybench_clean () =
  (* correct programs: zero diagnostics, nonzero elision *)
  List.iter
    (fun (k : Workloads.Polybench.kernel) ->
      let t = lint k.k_source in
      if not (Analysis.Lint.clean t) then
        Alcotest.failf "%s: spurious diagnostics:@ %s" k.k_name
          (String.concat "\n" (Analysis.Lint.to_lines t));
      if t.Analysis.Lint.elide_proven = 0 then
        Alcotest.failf "%s: no access proven elidable" k.k_name)
    Workloads.Polybench.all

let test_quickstart_one_bug () =
  (* tests run from _build/default/test; walk up until the example is
     found so this works from the source tree too *)
  let rec find dir n =
    let p = Filename.concat dir "examples/quickstart.c" in
    if Sys.file_exists p then p
    else if n = 0 then Alcotest.fail "examples/quickstart.c not found"
    else find (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  let source =
    In_channel.with_open_text (find Filename.current_dir_name 6)
      In_channel.input_all
  in
  let t = lint source in
  Alcotest.(check int) "exactly one diagnostic" 1
    (List.length t.Analysis.Lint.diags);
  Alcotest.(check int) "it is possible, not definite" 1
    t.Analysis.Lint.possible

(* ------------------------------------------------------------------ *)
(* Elision                                                             *)
(* ------------------------------------------------------------------ *)

let test_elide_plan_nonempty () =
  let m = compile (List.hd Workloads.Polybench.all).Workloads.Polybench.k_source in
  let p = Analysis.Elide.plan m in
  Alcotest.(check bool) "some accesses proven" true (p.Analysis.Elide.proven > 0);
  Alcotest.(check bool) "proven <= considered" true
    (p.Analysis.Elide.proven <= p.Analysis.Elide.considered)

let test_elide_differential () =
  (* a small in-process slice of the 200-seed CI gate *)
  let r = Harness.Elide_diff.run ~count:8 ~seed0:3000 () in
  if not (Harness.Elide_diff.ok r) then
    Alcotest.failf "elision diverged:@ %s"
      (String.concat "\n" r.Harness.Elide_diff.ed_failures);
  Alcotest.(check bool) "checks actually elided" true
    (r.Harness.Elide_diff.ed_elided > 0)

let test_elide_preserves_trap () =
  (* a program with a real bug must still trap identically with
     elision on: the analyzer only elides proven-safe accesses *)
  let source =
    {|
      int main() {
        long *p = (long*)malloc(32);
        p[0] = 1;
        free(p);
        return (int)p[0];  /* UAF: must tag-fault either way */
      }
    |}
  in
  let trap_of cfg =
    match Libc.Run.run ~cfg source with
    | _ -> None
    | exception Wasm.Instance.Trap msg -> Some msg
  in
  let plain = trap_of Cage.Config.mem_safety in
  let elided = trap_of (Cage.Config.with_elision Cage.Config.mem_safety) in
  (* allocation-tag numbers in the message vary with the global tag
     draw, so compare the fault class, not the exact rendering *)
  let is_tag_fault = function
    | Some msg -> Astring.String.is_infix ~affix:"tag fault" msg
    | None -> false
  in
  Alcotest.(check bool) "baseline tag-faults" true (is_tag_fault plain);
  Alcotest.(check bool) "elided run tag-faults too" true (is_tag_fault elided)

(* ------------------------------------------------------------------ *)
(* Interprocedural: call graph, summaries, escape, speculation         *)
(* ------------------------------------------------------------------ *)

let fidx_of m name =
  let n = Wasm.Ast.num_imports m in
  let rec go i = function
    | [] -> Alcotest.failf "no function %S in module" name
    | (f : Wasm.Ast.func) :: rest ->
        if f.Wasm.Ast.fname = Some name then n + i else go (i + 1) rest
  in
  go 0 m.Wasm.Ast.funcs

let test_mutual_recursion_scc () =
  (* even/odd call each other; the base case frees. The call graph must
     put both in one SCC and the summary fixpoint must propagate the
     free around the cycle, so the caller's liveness is havocked. *)
  let m =
    compile
      {|
        void odd(long *p, int n);
        void even(long *p, int n) { if (n == 0) { free(p); return; } odd(p, n - 1); }
        void odd(long *p, int n) { if (n == 0) { return; } even(p, n - 1); }
        int main() {
          long *p = (long *)malloc(16);
          even(p, 4);
          return 0;
        }
      |}
  in
  let cg = Analysis.Callgraph.build m in
  let e = fidx_of m "even" and o = fidx_of m "odd" in
  Alcotest.(check bool) "even and odd share an SCC" true
    (List.exists
       (fun c -> List.mem e c && List.mem o c)
       (Analysis.Callgraph.sccs cg));
  let summaries = Analysis.Summary.compute cg in
  Alcotest.(check bool) "even's summary frees" true
    summaries.(e).Analysis.Summary.sm_mutates;
  Alcotest.(check bool) "odd frees transitively (cycle fixpoint)" true
    summaries.(o).Analysis.Summary.sm_mutates

let test_call_indirect_conservative () =
  (* an indirect call joins the summaries of every type-matching table
     member: with a freeing function in the table, accesses after the
     call must not be elided; with only a benign one, they may be *)
  let prog callee =
    Printf.sprintf
      {|
        void killer(long *p) { free(p); }
        void keeper(long *p) { p[0] = p[0] + 1; }
        int main() {
          long *p = (long *)malloc(16);
          p[0] = 1;
          void (*f)(long *) = &%s;
          f(p);
          p[0] = 2;
          return 0;
        }
      |}
      callee
  in
  let killed = lint (prog "killer") and kept = lint (prog "keeper") in
  Alcotest.(check bool) "freeing table member blocks post-call elision" true
    (killed.Analysis.Lint.elide_proven < kept.Analysis.Lint.elide_proven)

let test_summary_invalidated_by_free () =
  (* the recursive self-call is summarized, not inlined: a callee that
     frees its aliased argument must invalidate the caller's liveness,
     withholding elision of the post-call access *)
  let prog base_case =
    Printf.sprintf
      {|
        void drop(long *p, int n) {
          if (n > 0) { drop(p, n - 1); return; }
          %s
        }
        int main() {
          long *p = (long *)malloc(16);
          p[0] = 1;
          drop(p, 3);
          long v = p[0];
          %s
          return (int)v;
        }
      |}
      base_case
      (if base_case = "free(p);" then "" else "free(p);")
  in
  let freeing = lint (prog "free(p);") and benign = lint (prog "p[0] = 9;") in
  Alcotest.(check bool) "summarized free invalidates elision" true
    (freeing.Analysis.Lint.elide_proven < benign.Analysis.Lint.elide_proven)

let arena_source =
  {|
    int main() {
      long *p = (long *)malloc(64);
      for (int i = 0; i < 8; i++) { p[i] = (long)i; }
      long s = 0;
      for (int i = 0; i < 8; i++) { s = s + p[i]; }
      free(p);
      return (int)s;
    }
  |}

let test_arena_lowering_runtime () =
  (* a non-escaping malloc/free pair: the plan lowers it to the arena,
     the run skips its tag-plane writes, and the result is unchanged *)
  let t = lint arena_source in
  Alcotest.(check int) "one arena-lowerable site" 1
    t.Analysis.Lint.arena_sites;
  let run cfg =
    let meter = Wasm.Meter.create () in
    let v = Libc.Run.ret_i32 (Libc.Run.run ~cfg ~meter arena_source) in
    (v, meter)
  in
  let v0, m0 = run Cage.Config.mem_safety in
  let v1, m1 =
    run
      (Cage.Config.with_arena
         (Cage.Config.with_bounds_elision Cage.Config.mem_safety))
  in
  Alcotest.(check int32) "checksum unchanged" v0 v1;
  Alcotest.(check int) "baseline writes every granule tag" 0
    (m0.Wasm.Meter.arena_new_granules + m0.Wasm.Meter.arena_free_granules);
  Alcotest.(check int) "arena skips segment.new tag writes" 4
    m1.Wasm.Meter.arena_new_granules;
  Alcotest.(check int) "arena skips segment.free retags" 4
    m1.Wasm.Meter.arena_free_granules;
  Alcotest.(check bool) "span checks elided too" true
    (m1.Wasm.Meter.elided_bounds > 0)

let bits_subset ~sub ~super =
  let ok = ref true in
  Array.iteri
    (fun i (b : Bytes.t) ->
      let fb = if i < Array.length super then super.(i) else Bytes.empty in
      Bytes.iteri
        (fun j c ->
          let s = Char.code c in
          let f =
            if j < Bytes.length fb then Char.code (Bytes.get fb j) else 0
          in
          if s land lnot f <> 0 then ok := false)
        b)
    sub;
  !ok

let test_spec_safe_plan_subset () =
  (* --no-spec-elide: the speculation-safe plan may only elide a subset
     of what the architectural plan elides, and on a CVE-suite program
     with branch-refinement-dependent proofs it must withhold some *)
  let e =
    List.find
      (fun (e : Workloads.Cve_suite.entry) -> e.cve = "CVE-2023-4863")
      Workloads.Cve_suite.entries
  in
  let m = compile e.Workloads.Cve_suite.source in
  let full = Analysis.Elide.plan m in
  let spec = Analysis.Elide.plan ~spec_safe:true m in
  Alcotest.(check bool) "some elisions are speculation-unsafe" true
    (spec.Analysis.Elide.spec_unsafe >= 1);
  Alcotest.(check bool) "spec-safe plan keeps those checks" true
    (spec.Analysis.Elide.proven < full.Analysis.Elide.proven);
  Alcotest.(check bool) "spec-safe bitsets are a subset" true
    (bits_subset ~sub:spec.Analysis.Elide.bitsets
       ~super:full.Analysis.Elide.bitsets)

let test_no_spec_elide_runtime () =
  (* the loop proofs in [arena_source] lean on branch refinement, so
     under --no-spec-elide the runtime must keep (and count) those
     checks — with an unchanged result *)
  let run cfg =
    let meter = Wasm.Meter.create () in
    let v = Libc.Run.ret_i32 (Libc.Run.run ~cfg ~meter arena_source) in
    (v, meter)
  in
  let v_full, m_full = run (Cage.Config.with_elision Cage.Config.mem_safety) in
  let v_spec, m_spec =
    run
      (Cage.Config.with_spec_safe_only
         (Cage.Config.with_elision Cage.Config.mem_safety))
  in
  Alcotest.(check int32) "result unchanged" v_full v_spec;
  Alcotest.(check bool) "spec-safe mode retains checks" true
    (m_spec.Wasm.Meter.elided_checks < m_full.Wasm.Meter.elided_checks)

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "analysis"
    [
      ( "interval",
        [
          tc "basics" test_interval_basics;
          tc "widening" test_interval_widen;
          tc "overflow safe" test_interval_overflow_safe;
          tc "saturation at extremes" test_interval_saturation;
          tc "bit operations" test_interval_bitops;
        ] );
      ( "interprocedural",
        [
          tc "mutual recursion SCC" test_mutual_recursion_scc;
          tc "call_indirect conservative" test_call_indirect_conservative;
          tc "summary invalidated by free" test_summary_invalidated_by_free;
          tc "arena lowering runtime" test_arena_lowering_runtime;
          tc "spec-safe plan subset" test_spec_safe_plan_subset;
          tc "no-spec-elide runtime" test_no_spec_elide_runtime;
        ] );
      ( "lint",
        [
          tc "cve suite all flagged" test_cve_suite_all_flagged;
          tc "uaf entries definite" test_cve_uaf_definite;
          tc "polybench clean" test_polybench_clean;
          tc "quickstart one bug" test_quickstart_one_bug;
        ] );
      ( "elision",
        [
          tc "plan nonempty" test_elide_plan_nonempty;
          tc "differential slice" test_elide_differential;
          tc "trap preserved" test_elide_preserves_trap;
        ] );
    ]
