(* Tests for the WebAssembly substrate: validation, core semantics, and
   the Cage extension instructions (paper Fig. 7 / Fig. 10 / Fig. 11). *)

open Wasm

let value = Alcotest.testable Values.pp Values.equal

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let mem32 =
  { Types.mem_idx = Types.Idx32;
    mem_limits = { Types.min = 1L; max = Some 16L } }

(* A module with one exported function "f" per entry in [funcs]. *)
let module_of ?(memory = Some mem64) ?(table = None) ?(globals = [])
    ?(elems = []) ?(datas = []) funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory;
    table;
    globals;
    elems;
    datas;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let instantiate ?config ?imports m =
  (match Validate.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validation failed: %s" e);
  Exec.instantiate ?config ?imports m

let run_f0 ?config ?imports m args =
  Exec.invoke (instantiate ?config ?imports m) "f0" args

let expect_trap ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected trap containing %S" substring
  | exception Instance.Trap msg ->
      if not (Astring.String.is_infix ~affix:substring msg) then
        Alcotest.failf "trap %S does not mention %S" msg substring

(* ------------------------------------------------------------------ *)
(* Core semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_i32_arith () =
  let m =
    module_of
      [ (ft [ Types.I32; Types.I32 ] [ Types.I32 ], [],
         [ Ast.LocalGet 0; Ast.LocalGet 1; Ast.IBinop (Ast.W32, Ast.Add) ]) ]
  in
  Alcotest.(check (list value)) "3 + 4" [ Values.I32 7l ]
    (run_f0 m [ Values.I32 3l; Values.I32 4l ])

let test_div_by_zero_traps () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I32Const 1l; Ast.I32Const 0l; Ast.IBinop (Ast.W32, Ast.DivS) ])
      ]
  in
  expect_trap ~substring:"divide by zero" (fun () -> run_f0 m [])

let test_div_overflow_traps () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I32Const Int32.min_int; Ast.I32Const (-1l);
           Ast.IBinop (Ast.W32, Ast.DivS) ]) ]
  in
  expect_trap ~substring:"integer overflow" (fun () -> run_f0 m [])

let test_unreachable_traps () =
  let m = module_of [ (ft [] [], [], [ Ast.Unreachable ]) ] in
  expect_trap ~substring:"unreachable" (fun () -> run_f0 m [])

let test_block_br () =
  (* block (result i32) i32.const 1 br 0 i32.const 2 end *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.Block
             (Ast.ValBlock (Some Types.I32),
              [ Ast.I32Const 1l; Ast.Br 0; Ast.Unreachable ]) ]) ]
  in
  Alcotest.(check (list value)) "br carries value" [ Values.I32 1l ]
    (run_f0 m [])

let test_loop_countdown () =
  (* local 0 = 5; loop: local0 -= 1; br_if 0 (local0 != 0); end; return 42 *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [ Types.I32 ],
         [ Ast.I32Const 5l; Ast.LocalSet 0;
           Ast.Loop
             (Ast.ValBlock None,
              [ Ast.LocalGet 0; Ast.I32Const 1l; Ast.IBinop (Ast.W32, Ast.Sub);
                Ast.LocalTee 0; Ast.I32Const 0l; Ast.IRelop (Ast.W32, Ast.Ne);
                Ast.BrIf 0 ]);
           Ast.I32Const 42l ]) ]
  in
  Alcotest.(check (list value)) "loop terminates" [ Values.I32 42l ]
    (run_f0 m [])

let test_nested_br_depth () =
  (* br 1 out of two nested blocks skips code in both *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.Block
             (Ast.ValBlock (Some Types.I32),
              [ Ast.Block
                  (Ast.ValBlock None, [ Ast.I32Const 7l; Ast.Br 1 ]);
                Ast.Unreachable ]) ]) ]
  in
  Alcotest.(check (list value)) "br 1 escapes both" [ Values.I32 7l ]
    (run_f0 m [])

let test_br_table () =
  let case i =
    [ Ast.Block
        (Ast.ValBlock None,
         [ Ast.Block
             (Ast.ValBlock None,
              [ Ast.Block
                  (Ast.ValBlock None,
                   [ Ast.I32Const (Int32.of_int i); Ast.BrTable ([ 0; 1 ], 2) ]);
                (* case 0 *) Ast.I32Const 100l; Ast.Return ]);
           (* case 1 *) Ast.I32Const 200l; Ast.Return ]);
      (* default *) Ast.I32Const 300l ]
  in
  List.iter
    (fun (i, expect) ->
      let m = module_of [ (ft [] [ Types.I32 ], [], case i) ] in
      Alcotest.(check (list value))
        (Printf.sprintf "br_table %d" i)
        [ Values.I32 expect ] (run_f0 m []))
    [ (0, 100l); (1, 200l); (5, 300l) ]

let test_if_else () =
  let mk c =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I32Const c;
           Ast.If
             (Ast.ValBlock (Some Types.I32),
              [ Ast.I32Const 1l ], [ Ast.I32Const 2l ]) ]) ]
  in
  Alcotest.(check (list value)) "then" [ Values.I32 1l ] (run_f0 (mk 1l) []);
  Alcotest.(check (list value)) "else" [ Values.I32 2l ] (run_f0 (mk 0l) [])

let test_select () =
  let m =
    module_of
      [ (ft [ Types.I32 ] [ Types.I64 ], [],
         [ Ast.I64Const 10L; Ast.I64Const 20L; Ast.LocalGet 0; Ast.Select ]) ]
  in
  Alcotest.(check (list value)) "select true" [ Values.I64 10L ]
    (run_f0 m [ Values.I32 1l ]);
  Alcotest.(check (list value)) "select false" [ Values.I64 20L ]
    (run_f0 m [ Values.I32 0l ])

let test_globals () =
  let m =
    module_of
      ~globals:
        [ { Ast.g_type = { Types.mut = true; g_type = Types.I64 };
            g_init = Values.I64 5L } ]
      [ (ft [] [ Types.I64 ], [],
         [ Ast.GlobalGet 0; Ast.I64Const 3L; Ast.IBinop (Ast.W64, Ast.Add);
           Ast.GlobalSet 0; Ast.GlobalGet 0 ]) ]
  in
  Alcotest.(check (list value)) "global updated" [ Values.I64 8L ]
    (run_f0 m [])

let test_call () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [], [ Ast.I32Const 20l; Ast.Call 1 ]);
        (ft [ Types.I32 ] [ Types.I32 ], [],
         [ Ast.LocalGet 0; Ast.I32Const 1l; Ast.IBinop (Ast.W32, Ast.Add) ]) ]
  in
  Alcotest.(check (list value)) "call" [ Values.I32 21l ] (run_f0 m [])

let test_host_import () =
  let m =
    {
      (module_of [ (ft [] [ Types.I32 ], [], [ Ast.I32Const 5l; Ast.Call 0 ]) ]) with
      types = [ ft [ Types.I32 ] [ Types.I32 ]; ft [] [ Types.I32 ] ];
      imports = [ { Ast.im_module = "env"; im_name = "double"; im_type = 0 } ];
      funcs =
        [ { Ast.ftype = 1; locals = []; body = [ Ast.I32Const 5l; Ast.Call 0 ];
            fname = Some "main" } ];
      exports = [ { Ast.ex_name = "f0"; ex_desc = Ast.Func_export 1 } ];
    }
  in
  let double _ = function
    | [ Values.I32 x ] -> [ Values.I32 (Int32.mul x 2l) ]
    | _ -> Alcotest.fail "bad host args"
  in
  Alcotest.(check (list value)) "host import" [ Values.I32 10l ]
    (run_f0 ~imports:[ ("env", "double", double) ] m [])

let test_call_indirect () =
  let table = Some { Types.tbl_limits = { Types.min = 2L; max = Some 2L } } in
  let m =
    module_of ~table
      ~elems:[ { Ast.e_offset = 0L; e_funcs = [ 1; 2 ] } ]
      [ (ft [ Types.I32 ] [ Types.I32 ], [],
         [ Ast.I32Const 50l; Ast.LocalGet 0; Ast.CallIndirect 1 ]);
        (ft [ Types.I32 ] [ Types.I32 ], [],
         [ Ast.LocalGet 0; Ast.I32Const 1l; Ast.IBinop (Ast.W32, Ast.Add) ]);
        (ft [ Types.I32 ] [ Types.I32 ], [],
         [ Ast.LocalGet 0; Ast.I32Const 2l; Ast.IBinop (Ast.W32, Ast.Mul) ]) ]
  in
  Alcotest.(check (list value)) "slot 0" [ Values.I32 51l ]
    (run_f0 m [ Values.I32 0l ]);
  Alcotest.(check (list value)) "slot 1" [ Values.I32 100l ]
    (run_f0 m [ Values.I32 1l ])

let test_call_indirect_type_mismatch () =
  let table = Some { Types.tbl_limits = { Types.min = 1L; max = Some 1L } } in
  let m =
    module_of ~table
      ~elems:[ { Ast.e_offset = 0L; e_funcs = [ 1 ] } ]
      [ (ft [] [ Types.I64 ], [], [ Ast.I32Const 0l; Ast.CallIndirect 2 ]);
        (ft [ Types.I32 ] [ Types.I32 ], [],
         [ Ast.LocalGet 0 ]);
        (ft [] [ Types.I64 ], [], [ Ast.I64Const 0L ]) ]
  in
  expect_trap ~substring:"indirect call type mismatch" (fun () -> run_f0 m [])

let test_call_indirect_oob () =
  let table = Some { Types.tbl_limits = { Types.min = 1L; max = Some 1L } } in
  let m =
    module_of ~table
      [ (ft [] [], [], [ Ast.I32Const 7l; Ast.CallIndirect 0 ]) ]
  in
  expect_trap ~substring:"undefined element" (fun () -> run_f0 m [])

let test_call_indirect_null () =
  let table = Some { Types.tbl_limits = { Types.min = 1L; max = Some 1L } } in
  let m =
    module_of ~table
      [ (ft [] [], [], [ Ast.I32Const 0l; Ast.CallIndirect 0 ]) ]
  in
  expect_trap ~substring:"uninitialized table element" (fun () -> run_f0 m [])

let test_recursion_exhausts () =
  let m = module_of [ (ft [] [], [], [ Ast.Call 0 ]) ] in
  expect_trap ~substring:"call stack exhausted" (fun () -> run_f0 m [])

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let memarg ?(offset = 0L) () = { Ast.offset; align = 0 }

let test_store_load_roundtrip () =
  let m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [],
         [ Ast.I64Const 128L; Ast.LocalGet 0;
           Ast.Store (Types.I64, None, memarg ());
           Ast.I64Const 128L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "roundtrip" [ Values.I64 0xdeadbeefL ]
    (run_f0 m [ Values.I64 0xdeadbeefL ])

let test_load_offset_folding () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I64Const 100L; Ast.I32Const 77l;
           Ast.Store (Types.I32, None, memarg ~offset:24L ());
           Ast.I64Const 124L; Ast.Load (Types.I32, None, memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "static offset added" [ Values.I32 77l ]
    (run_f0 m [])

let test_packed_sign_extension () =
  let m =
    module_of
      [ (ft [] [ Types.I32; Types.I32 ], [],
         [ Ast.I64Const 0L; Ast.I32Const 0xffl;
           Ast.Store (Types.I32, Some Ast.Pack8, memarg ());
           Ast.I64Const 0L;
           Ast.Load (Types.I32, Some (Ast.Pack8, Ast.SX), memarg ());
           Ast.I64Const 0L;
           Ast.Load (Types.I32, Some (Ast.Pack8, Ast.ZX), memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "sx then zx" [ Values.I32 (-1l); Values.I32 255l ]
    (run_f0 m [])

let test_oob_load_traps () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 65536L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  expect_trap ~substring:"out of bounds" (fun () -> run_f0 m [])

let test_oob_store_edge () =
  (* last valid byte is 65535; an 8-byte store at 65529 crosses the end *)
  let m =
    module_of
      [ (ft [] [], [],
         [ Ast.I64Const 65529L; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg ()) ]) ]
  in
  expect_trap ~substring:"out of bounds" (fun () -> run_f0 m [])

let test_memory_grow_size () =
  let m =
    module_of
      [ (ft [] [ Types.I64; Types.I64; Types.I64 ], [],
         [ Ast.MemorySize; Ast.I64Const 2L; Ast.MemoryGrow; Ast.MemorySize ]) ]
  in
  Alcotest.(check (list value)) "grow"
    [ Values.I64 1L; Values.I64 1L; Values.I64 3L ]
    (run_f0 m [])

let test_memory_grow_beyond_max_fails () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [], [ Ast.I64Const 100L; Ast.MemoryGrow ]) ]
  in
  Alcotest.(check (list value)) "grow fails with -1" [ Values.I64 (-1L) ]
    (run_f0 m [])

let test_memory_fill_and_copy () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ (* fill [64, 96) with 0xAB *)
           Ast.I64Const 64L; Ast.I32Const 0xabl; Ast.I64Const 32L;
           Ast.MemoryFill;
           (* copy [64,96) to [200,232) *)
           Ast.I64Const 200L; Ast.I64Const 64L; Ast.I64Const 32L;
           Ast.MemoryCopy;
           Ast.I64Const 231L;
           Ast.Load (Types.I32, Some (Ast.Pack8, Ast.ZX), memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "fill+copy" [ Values.I32 0xabl ] (run_f0 m [])

let test_wasm32_memory_addressing () =
  let m =
    module_of ~memory:(Some mem32)
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I32Const 16l; Ast.I32Const 99l;
           Ast.Store (Types.I32, None, memarg ());
           Ast.I32Const 16l; Ast.Load (Types.I32, None, memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "wasm32 store/load" [ Values.I32 99l ]
    (run_f0 m [])

let test_data_segment_applied () =
  let m =
    module_of
      ~datas:[ { Ast.d_offset = 8L; d_bytes = "hi" } ]
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I64Const 8L;
           Ast.Load (Types.I32, Some (Ast.Pack8, Ast.ZX), memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "data segment" [ Values.I32 104l ]
    (run_f0 m [])

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let expect_invalid ?(cage = true) ~substring m =
  match Validate.validate ~cage m with
  | Ok () -> Alcotest.failf "expected validation error mentioning %S" substring
  | Error e ->
      if not (Astring.String.is_infix ~affix:substring e) then
        Alcotest.failf "error %S does not mention %S" e substring

let test_validate_type_mismatch () =
  expect_invalid ~substring:"type mismatch"
    (module_of
       [ (ft [] [ Types.I32 ], [],
          [ Ast.I64Const 0L ]) ])

let test_validate_stack_underflow () =
  expect_invalid ~substring:"underflow"
    (module_of [ (ft [] [ Types.I32 ], [], [ Ast.IBinop (Ast.W32, Ast.Add) ]) ])

let test_validate_bad_br_depth () =
  expect_invalid ~substring:"branch depth"
    (module_of [ (ft [] [], [], [ Ast.Br 3 ]) ])

let test_validate_leftover_values () =
  expect_invalid ~substring:"values left"
    (module_of
       [ (ft [] [], [], [ Ast.I32Const 0l ]) ])

let test_validate_immutable_global () =
  expect_invalid ~substring:"immutable"
    (module_of
       ~globals:
         [ { Ast.g_type = { Types.mut = false; g_type = Types.I32 };
             g_init = Values.I32 0l } ]
       [ (ft [] [], [], [ Ast.I32Const 1l; Ast.GlobalSet 0 ]) ])

let test_validate_local_oob () =
  expect_invalid ~substring:"local index"
    (module_of [ (ft [] [], [], [ Ast.LocalGet 3 ]) ])

let test_validate_align_too_large () =
  expect_invalid ~substring:"alignment"
    (module_of
       [ (ft [] [ Types.I32 ], [],
          [ Ast.I64Const 0L;
            Ast.Load (Types.I32, None, { Ast.offset = 0L; align = 3 }) ]) ])

let test_validate_unreachable_polymorphism () =
  (* after unreachable, anything typechecks *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.Unreachable; Ast.IBinop (Ast.W64, Ast.Add); Ast.Drop;
           Ast.I32Const 0l ]) ]
  in
  match Validate.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unreachable polymorphism rejected: %s" e

let test_validate_cage_requires_feature () =
  expect_invalid ~cage:false ~substring:"cage feature"
    (module_of
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentNew 0L ]) ])

let test_validate_cage_requires_memory64 () =
  expect_invalid ~substring:"memory64"
    (module_of ~memory:(Some mem32)
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentNew 0L ]) ])

let test_validate_cage_typing () =
  (* Fig. 10 rules accept well-typed uses *)
  let m =
    module_of
      [ (ft [] [], [],
         [ Ast.I64Const 16L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           (* ptr on stack: set_tag of the same region *)
           Ast.I64Const 16L; Ast.LocalGet 0; Ast.I64Const 32L;
           Ast.SegmentSetTag 0L ]) ]
  in
  (* LocalGet 0 refers to a local we didn't declare: fix with a local *)
  let m =
    { m with
      Ast.funcs =
        List.map (fun f -> { f with Ast.locals = [ Types.I64 ] }) m.Ast.funcs
    }
  in
  (* adjust body: store segment.new result in the local *)
  let body =
    [ Ast.I64Const 16L; Ast.I64Const 32L; Ast.SegmentNew 0L; Ast.LocalSet 0;
      Ast.I64Const 16L; Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentSetTag 0L;
      Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
      Ast.I64Const 5L; Ast.PointerSign; Ast.PointerAuth; Ast.Drop ]
  in
  let m =
    { m with
      Ast.funcs = List.map (fun f -> { f with Ast.body }) m.Ast.funcs }
  in
  match Validate.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cage typing rejected: %s" e

let test_validate_pointer_sign_type () =
  expect_invalid ~substring:"type mismatch"
    (module_of
       [ (ft [] [ Types.I64 ], [], [ Ast.I32Const 0l; Ast.PointerSign ]) ])

let test_validate_segment_unaligned_offset () =
  expect_invalid ~substring:"granule aligned"
    (module_of
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentNew 8L ]) ])

let test_validate_segment_negative_offset () =
  expect_invalid ~substring:"negative offset"
    (module_of
       [ (ft [] [], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentFree (-16L) ]) ])

let test_validate_segment_no_tag_space () =
  (* zero minimum pages: no granules exist, every segment op would trap *)
  let mem0 =
    { Types.mem_idx = Types.Idx64;
      mem_limits = { Types.min = 0L; max = Some 16L } }
  in
  expect_invalid ~substring:"tag space"
    (module_of ~memory:(Some mem0)
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentNew 0L ]) ])

let test_validate_segment_operand_types () =
  (* segment.new takes [i64 i64]; an i32 length must be rejected *)
  expect_invalid ~substring:"type mismatch"
    (module_of
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I32Const 16l; Ast.SegmentNew 0L ]) ]);
  (* segment.set_tag takes [i64 i64 i64] *)
  expect_invalid ~substring:"type mismatch"
    (module_of
       [ (ft [] [], [],
          [ Ast.I32Const 0l; Ast.I64Const 0L; Ast.I64Const 32L;
            Ast.SegmentSetTag 0L ]) ]);
  (* segment.free takes [i64 i64] and pushes nothing *)
  expect_invalid ~substring:"type mismatch"
    (module_of
       [ (ft [] [], [],
          [ Ast.I64Const 0L; Ast.I32Const 32l; Ast.SegmentFree 0L ]) ])

let test_validate_segment_requires_memory () =
  expect_invalid ~substring:"memory"
    (module_of ~memory:None
       [ (ft [] [ Types.I64 ], [],
          [ Ast.I64Const 0L; Ast.I64Const 16L; Ast.SegmentNew 0L ]) ])

(* ------------------------------------------------------------------ *)
(* Cage extension semantics                                            *)
(* ------------------------------------------------------------------ *)

(* f0: allocates a 32-byte segment at address 1024, stores 42 through the
   tagged pointer at [idx], loads it back. *)
let segment_rw_module idx =
  module_of
    [ (ft [] [ Types.I64 ], [ Types.I64 ],
       [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
         Ast.LocalSet 0;
         Ast.LocalGet 0; Ast.I64Const 42L;
         Ast.Store (Types.I64, None, memarg ~offset:idx ());
         Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ~offset:idx ()) ])
    ]

let test_segment_new_rw () =
  Alcotest.(check (list value)) "tagged rw" [ Values.I64 42L ]
    (run_f0 (segment_rw_module 0L) []);
  Alcotest.(check (list value)) "tagged rw at end" [ Values.I64 42L ]
    (run_f0 (segment_rw_module 24L) [])

let test_segment_overflow_traps () =
  (* store 8 bytes at offset 32: one past the segment end *)
  expect_trap ~substring:"tag fault" (fun () ->
      run_f0 (segment_rw_module 32L) [])

let test_segment_untagged_access_traps () =
  (* access the segment through the raw (untagged) address *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.I64Const 1024L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  expect_trap ~substring:"tag fault" (fun () -> run_f0 m [])

let test_segment_new_zeroes () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ (* dirty the memory first *)
           Ast.I64Const 1024L; Ast.I64Const (-1L);
           Ast.Store (Types.I64, None, memarg ());
           Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "segment.new zeroes" [ Values.I64 0L ]
    (run_f0 m [])

let test_segment_free_catches_uaf () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
           Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  expect_trap ~substring:"tag fault" (fun () -> run_f0 m [])

let test_segment_double_free_traps () =
  let m =
    module_of
      [ (ft [] [], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L ]) ]
  in
  expect_trap ~substring:"double free" (fun () -> run_f0 m [])

let test_segment_unaligned_traps () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 1030L; Ast.I64Const 32L; Ast.SegmentNew 0L ]) ]
  in
  expect_trap ~substring:"aligned" (fun () -> run_f0 m [])

let test_segment_oob_traps () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 65520L; Ast.I64Const 64L; Ast.SegmentNew 0L ]) ]
  in
  expect_trap ~substring:"bounds" (fun () -> run_f0 m [])

let test_segment_set_tag_transfers () =
  (* create a segment, then set_tag an adjacent region to the same tag
     and access it through the tagged pointer *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 16L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.I64Const 1040L; Ast.LocalGet 0; Ast.I64Const 16L;
           Ast.SegmentSetTag 0L;
           Ast.LocalGet 0; Ast.I64Const 7L;
           Ast.Store (Types.I64, None, memarg ~offset:16L ());
           Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ~offset:16L ()) ])
      ]
  in
  Alcotest.(check (list value)) "merged segment" [ Values.I64 7L ]
    (run_f0 m [])

let test_segment_disabled_tags_ignored () =
  (* with enforce_tags = false (baseline wasm64), untagged access to a
     tagged segment is fine: the checks are off *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.I64Const 1024L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  let config = { Instance.default_config with enforce_tags = false } in
  Alcotest.(check (list value)) "checks off" [ Values.I64 0L ]
    (run_f0 ~config m [])

(* ------------------------------------------------------------------ *)
(* Checked bulk memory operations (Eq. 1-4 coverage for fill/copy)     *)
(* ------------------------------------------------------------------ *)

(* Allocate a 32-byte segment at 1024, free it, then run [after] with
   the stale tagged pointer in local 0. *)
let freed_segment_module after =
  module_of
    [ (ft [] [], [ Types.I64 ],
       [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
         Ast.LocalSet 0;
         Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L ]
       @ after) ]

let async_config =
  { Instance.default_config with mte_mode = Arch.Mte.Async }

let asymm_config =
  { Instance.default_config with mte_mode = Arch.Mte.Asymmetric }

let test_fill_freed_segment_traps_sync () =
  let m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.I32Const 0xabl; Ast.I64Const 32L; Ast.MemoryFill ]
  in
  expect_trap ~substring:"tag fault" (fun () -> run_f0 m [])

let test_copy_freed_segment_traps_sync () =
  (* the freed segment is the copy *source*: the load side of
     memory.copy must be tag-checked too *)
  let m =
    freed_segment_module
      [ Ast.I64Const 64L; Ast.LocalGet 0; Ast.I64Const 32L; Ast.MemoryCopy ]
  in
  expect_trap ~substring:"tag fault" (fun () -> run_f0 m [])

let test_fill_freed_async_deferred_sticky () =
  (* Async: the fill proceeds, the mismatch latches in the sticky TFSR,
     and the trap is reported ("deferred ...") when the function
     returns. The later faulting load must not displace the first
     (store) fault. *)
  let m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.I32Const 0xabl; Ast.I64Const 32L; Ast.MemoryFill;
        Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()); Ast.Drop ]
  in
  match run_f0 ~config:async_config m [] with
  | _ -> Alcotest.fail "expected deferred trap at function return"
  | exception Instance.Trap msg ->
      Alcotest.(check bool) "reported at sync point" true
        (Astring.String.is_prefix ~affix:"deferred" msg);
      Alcotest.(check bool) "sticky first fault is the store" true
        (Astring.String.is_infix ~affix:"store" msg)

let test_asymmetric_fill_store_sync () =
  (* Asymmetric checks stores synchronously: the trap is immediate, not
     a "deferred" report *)
  let m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.I32Const 0xabl; Ast.I64Const 32L; Ast.MemoryFill ]
  in
  match run_f0 ~config:asymm_config m [] with
  | _ -> Alcotest.fail "expected synchronous trap"
  | exception Instance.Trap msg ->
      Alcotest.(check bool) "store side faults synchronously" false
        (Astring.String.is_prefix ~affix:"deferred" msg);
      Alcotest.(check bool) "is a tag fault" true
        (Astring.String.is_infix ~affix:"tag fault" msg)

let test_asymmetric_copy_load_async () =
  (* ... but loads asynchronously: copying *from* the freed segment
     defers to the function-return sync point *)
  let m =
    freed_segment_module
      [ Ast.I64Const 64L; Ast.LocalGet 0; Ast.I64Const 32L; Ast.MemoryCopy ]
  in
  match run_f0 ~config:asymm_config m [] with
  | _ -> Alcotest.fail "expected deferred trap at function return"
  | exception Instance.Trap msg ->
      Alcotest.(check bool) "load side defers to sync point" true
        (Astring.String.is_prefix ~affix:"deferred" msg)

let test_zero_length_bulk_at_boundary () =
  (* len = 0 at addr = memsize is legal (the boundary address is in
     bounds and no granule is touched); one byte past is not *)
  let page = 65536L in
  let ok =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.I64Const page; Ast.I32Const 0l; Ast.I64Const 0L;
           Ast.MemoryFill;
           Ast.I64Const page; Ast.I64Const page; Ast.I64Const 0L;
           Ast.MemoryCopy;
           Ast.I32Const 1l ]) ]
  in
  Alcotest.(check (list value)) "zero-length ops at boundary allowed"
    [ Values.I32 1l ] (run_f0 ok []);
  let oob =
    module_of
      [ (ft [] [], [],
         [ Ast.I64Const (Int64.add page 1L); Ast.I32Const 0l; Ast.I64Const 0L;
           Ast.MemoryFill ]) ]
  in
  expect_trap ~substring:"out of bounds" (fun () -> run_f0 oob [])

let test_memory_grow_zero_queries () =
  (* memory.grow 0 is the "query the size" idiom: must succeed and must
     not disturb memory contents (no realloc happens) *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [], [ Ast.I64Const 0L; Ast.MemoryGrow ]);
        (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 100L; Ast.I64Const 7L;
           Ast.Store (Types.I64, None, memarg ());
           Ast.I64Const 0L; Ast.MemoryGrow; Ast.Drop;
           Ast.I64Const 100L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  let inst = instantiate m in
  Alcotest.(check (list value)) "grow 0 returns current size"
    [ Values.I64 1L ] (Exec.invoke inst "f0" []);
  Alcotest.(check (list value)) "contents preserved" [ Values.I64 7L ]
    (Exec.invoke inst "f1" [])

let test_br_table_bad_label_traps () =
  (* an unvalidated body whose br_table label has no enclosing block
     must hard-trap, not silently branch with a guessed arity *)
  let m =
    module_of
      [ (ft [] [], [],
         [ Ast.Block
             (Ast.ValBlock None,
              [ Ast.I32Const 0l; Ast.BrTable ([ 5 ], 6) ]) ]) ]
  in
  let inst = Exec.instantiate m in
  expect_trap ~substring:"out of range" (fun () -> Exec.invoke inst "f0" [])

let test_pointer_sign_auth_roundtrip () =
  let m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [],
         [ Ast.LocalGet 0; Ast.PointerSign; Ast.PointerAuth ]) ]
  in
  Alcotest.(check (list value)) "sign-auth" [ Values.I64 123456L ]
    (run_f0 m [ Values.I64 123456L ])

let test_pointer_auth_unsigned_traps () =
  let m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [],
         [ Ast.LocalGet 0; Ast.PointerAuth ]) ]
  in
  expect_trap ~substring:"invalid signature" (fun () ->
      run_f0 m [ Values.I64 99L ])

let test_signed_pointer_cannot_load () =
  (* a signed pointer carries non-canonical bits: dereference must trap *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 128L; Ast.PointerSign; Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  (* The signature could be 0 by chance for this key; accept either a
     trap or, in that rare case, a successful load of 0. *)
  match run_f0 m [] with
  | [ Values.I64 0L ] -> ()
  | other ->
      Alcotest.failf "expected trap or [0], got %d values" (List.length other)
  | exception Instance.Trap msg ->
      Alcotest.(check bool)
        (Printf.sprintf "trap is about canonicality: %s" msg)
        true
        (Astring.String.is_infix ~affix:"non-canonical" msg)

let test_cross_instance_auth_fails () =
  (* sign in instance A, authenticate in instance B: different k_s *)
  let sign_m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [], [ Ast.LocalGet 0; Ast.PointerSign ]) ]
  in
  let auth_m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [], [ Ast.LocalGet 0; Ast.PointerAuth ]) ]
  in
  let a = instantiate sign_m in
  let b = instantiate auth_m in
  match Exec.invoke a "f0" [ Values.I64 400L ] with
  | [ Values.I64 signed ] -> (
      match Exec.invoke b "f0" [ Values.I64 signed ] with
      | _ -> Alcotest.fail "cross-instance signature accepted"
      | exception Instance.Trap _ -> ())
  | _ -> Alcotest.fail "sign produced nothing"

let test_meter_counts () =
  let meter = Meter.create () in
  let config = { Instance.default_config with meter = Some meter } in
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 0L; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg ());
           Ast.I64Const 0L; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  ignore (run_f0 ~config m []);
  Alcotest.(check int) "1 load" 1 meter.Meter.loads;
  Alcotest.(check int) "1 store" 1 meter.Meter.stores;
  Alcotest.(check int) "8 bytes loaded" 8 meter.Meter.load_bytes;
  Alcotest.(check int) "constants" 3 meter.Meter.const

(* ------------------------------------------------------------------ *)
(* Numeric edge cases                                                  *)
(* ------------------------------------------------------------------ *)

let run1 body =
  match run_f0 (module_of [ (ft [] [ Types.I64 ], [], body) ]) [] with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected one result"

let run1_i32 body =
  match run_f0 (module_of [ (ft [] [ Types.I32 ], [], body) ]) [] with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected one result"

let test_bitcount_ops () =
  let check name expect body =
    Alcotest.(check value) name (Values.I64 expect) (run1 body)
  in
  check "clz64 of 1" 63L [ Ast.I64Const 1L; Ast.IUnop (Ast.W64, Ast.Clz) ];
  check "clz64 of 0" 64L [ Ast.I64Const 0L; Ast.IUnop (Ast.W64, Ast.Clz) ];
  check "ctz64 of 0x8000" 15L
    [ Ast.I64Const 0x8000L; Ast.IUnop (Ast.W64, Ast.Ctz) ];
  check "popcnt64 of -1" 64L
    [ Ast.I64Const (-1L); Ast.IUnop (Ast.W64, Ast.Popcnt) ];
  Alcotest.(check value) "clz32 of 0x80000000" (Values.I32 0l)
    (run1_i32 [ Ast.I32Const 0x80000000l; Ast.IUnop (Ast.W32, Ast.Clz) ])

let test_rotates () =
  Alcotest.(check value) "rotl64" (Values.I64 0x00000000000000FFL)
    (run1
       [ Ast.I64Const 0xFF00000000000000L; Ast.I64Const 8L;
         Ast.IBinop (Ast.W64, Ast.Rotl) ]);
  Alcotest.(check value) "rotr32 wraps count" (Values.I32 0x80000000l)
    (run1_i32
       [ Ast.I32Const 1l; Ast.I32Const 33l; Ast.IBinop (Ast.W32, Ast.Rotr) ])

let test_div_rem_signs () =
  let bin op x y =
    run1 [ Ast.I64Const x; Ast.I64Const y; Ast.IBinop (Ast.W64, op) ]
  in
  Alcotest.(check value) "divs trunc toward zero" (Values.I64 (-3L))
    (bin Ast.DivS (-7L) 2L);
  Alcotest.(check value) "rems sign follows dividend" (Values.I64 (-1L))
    (bin Ast.RemS (-7L) 2L);
  Alcotest.(check value) "divu treats as unsigned" (Values.I64 0L)
    (bin Ast.DivU (-7L) 100L |> fun v -> ignore v; bin Ast.DivU 7L 100L);
  Alcotest.(check value) "min_int rem -1 is 0" (Values.I64 0L)
    (bin Ast.RemS Int64.min_int (-1L))

let test_trunc_traps () =
  expect_trap ~substring:"invalid conversion" (fun () ->
      run_f0
        (module_of
           [ (ft [] [ Types.I32 ], [],
              [ Ast.F64Const Float.nan; Ast.Cvtop Ast.I32TruncF64S ]) ])
        []);
  expect_trap ~substring:"integer overflow" (fun () ->
      run_f0
        (module_of
           [ (ft [] [ Types.I32 ], [],
              [ Ast.F64Const 3.0e9; Ast.Cvtop Ast.I32TruncF64S ]) ])
        []);
  (* in range: fine *)
  Alcotest.(check value) "trunc -2.9 to -2" (Values.I32 (-2l))
    (run1_i32 [ Ast.F64Const (-2.9); Ast.Cvtop Ast.I32TruncF64S ])

let test_unsigned_conversions () =
  Alcotest.(check value) "u32 to f64" (Values.F64 4294967295.0)
    (match
       run_f0
         (module_of
            [ (ft [] [ Types.F64 ], [],
               [ Ast.I32Const (-1l); Ast.Cvtop Ast.F64ConvertI32U ]) ])
         []
     with
    | [ v ] -> v
    | _ -> Alcotest.fail "one result");
  Alcotest.(check value) "extend_i32_u" (Values.I64 0xffffffffL)
    (run1 [ Ast.I32Const (-1l); Ast.Cvtop Ast.I64ExtendI32U ])

let test_reinterpret_roundtrip () =
  Alcotest.(check value) "f64 bits roundtrip" (Values.F64 (-0.5))
    (match
       run_f0
         (module_of
            [ (ft [] [ Types.F64 ], [],
               [ Ast.F64Const (-0.5); Ast.Cvtop Ast.I64ReinterpretF64;
                 Ast.Cvtop Ast.F64ReinterpretI64 ]) ])
         []
     with
    | [ v ] -> v
    | _ -> Alcotest.fail "one result")

let test_f32_rounding_visible () =
  (* 0.1 is not representable: f32 and f64 views differ *)
  Alcotest.(check value) "demote rounds" (Values.I32 1l)
    (run1_i32
       [ Ast.F64Const 0.1; Ast.Cvtop Ast.F32DemoteF64;
         Ast.Cvtop Ast.F64PromoteF32; Ast.F64Const 0.1;
         Ast.FRelop (Ast.W64, Ast.FNe) ])

let test_br_table_negative_index () =
  (* a negative i32 selector is a huge unsigned value: default target *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.Block
             (Ast.ValBlock None,
              [ Ast.Block
                  (Ast.ValBlock None,
                   [ Ast.I32Const (-5l); Ast.BrTable ([ 0 ], 1) ]);
                Ast.I32Const 10l; Ast.Return ]);
           Ast.I32Const 20l ]) ]
  in
  Alcotest.(check (list value)) "negative -> default" [ Values.I32 20l ]
    (run_f0 m [])

let test_packed_store_truncates () =
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 0L; Ast.I64Const 0x1234567890L;
           Ast.Store (Types.I64, Some Ast.Pack16, memarg ());
           Ast.I64Const 0L;
           Ast.Load (Types.I64, Some (Ast.Pack16, Ast.ZX), memarg ()) ]) ]
  in
  Alcotest.(check (list value)) "store16 keeps low bits" [ Values.I64 0x7890L ]
    (run_f0 m [])

let test_fmin_nan_propagates () =
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [],
         [ Ast.F64Const Float.nan; Ast.F64Const 1.0;
           Ast.FBinop (Ast.W64, Ast.FMin);
           (* NaN != NaN *)
           Ast.F64Const 0.0; Ast.FRelop (Ast.W64, Ast.FEq);
           Ast.ITestop Ast.W32 ]) ]
  in
  Alcotest.(check (list value)) "fmin(nan, 1) is nan" [ Values.I32 1l ]
    (run_f0 m [])

(* ------------------------------------------------------------------ *)
(* Differential property tests                                         *)
(* ------------------------------------------------------------------ *)

let arith_op_gen =
  QCheck.Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.And; Ast.Or; Ast.Xor; Ast.Shl;
      Ast.ShrS; Ast.ShrU; Ast.Rotl; Ast.Rotr ]

let prop_i64_binop_matches_ocaml =
  QCheck.Test.make ~name:"wasm i64 binop agrees with direct evaluation"
    ~count:300
    QCheck.(
      triple (make arith_op_gen) int64 int64)
    (fun (op, x, y) ->
      let m =
        module_of
          [ (ft [] [ Types.I64 ], [],
             [ Ast.I64Const x; Ast.I64Const y; Ast.IBinop (Ast.W64, op) ]) ]
      in
      let expect =
        match op with
        | Ast.Add -> Int64.add x y
        | Ast.Sub -> Int64.sub x y
        | Ast.Mul -> Int64.mul x y
        | Ast.And -> Int64.logand x y
        | Ast.Or -> Int64.logor x y
        | Ast.Xor -> Int64.logxor x y
        | Ast.Shl -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
        | Ast.ShrS -> Int64.shift_right x (Int64.to_int (Int64.logand y 63L))
        | Ast.ShrU ->
            Int64.shift_right_logical x (Int64.to_int (Int64.logand y 63L))
        | Ast.Rotl -> Values.rotl64 x y
        | Ast.Rotr -> Values.rotr64 x y
        | _ -> assert false
      in
      match run_f0 m [] with
      | [ Values.I64 got ] -> Int64.equal got expect
      | _ -> false)

let prop_store_load_identity =
  QCheck.Test.make ~name:"store/load roundtrips any i64 at any granule"
    ~count:300
    QCheck.(pair int64 (int_bound 4000))
    (fun (v, slot) ->
      let addr = Int64.of_int (slot * 8) in
      let m =
        module_of
          [ (ft [] [ Types.I64 ], [],
             [ Ast.I64Const addr; Ast.I64Const v;
               Ast.Store (Types.I64, None, memarg ());
               Ast.I64Const addr; Ast.Load (Types.I64, None, memarg ()) ]) ]
      in
      match run_f0 m [] with
      | [ Values.I64 got ] -> Int64.equal got v
      | _ -> false)

let prop_segment_lifecycle =
  QCheck.Test.make
    ~name:"segment new/store/load/free lifecycle at random granules"
    ~count:200
    QCheck.(pair (int_bound 100) (int_bound 30))
    (fun (granule, glen) ->
      let addr = Int64.of_int (1024 + (granule * 16)) in
      let len = Int64.of_int ((glen + 1) * 16) in
      let m =
        module_of
          [ (ft [] [ Types.I64 ], [ Types.I64 ],
             [ Ast.I64Const addr; Ast.I64Const len; Ast.SegmentNew 0L;
               Ast.LocalSet 0;
               Ast.LocalGet 0; Ast.I64Const 7L;
               Ast.Store (Types.I64, None, memarg ());
               Ast.LocalGet 0; Ast.I64Const len; Ast.SegmentFree 0L;
               Ast.I64Const 1L ]) ]
      in
      match run_f0 m [] with
      | [ Values.I64 1L ] -> true
      | _ -> false)

(* Robustness: random instruction soups that pass validation must never
   crash the interpreter with anything but a clean Trap. *)
let random_instr rng : Ast.instr =
  let int_ops =
    [| Ast.Add; Ast.Sub; Ast.Mul; Ast.DivS; Ast.DivU; Ast.RemS; Ast.RemU;
       Ast.And; Ast.Or; Ast.Xor; Ast.Shl; Ast.ShrS; Ast.ShrU; Ast.Rotl;
       Ast.Rotr |]
  in
  match Random.State.int rng 12 with
  | 0 -> Ast.I64Const (Random.State.int64 rng 1000L)
  | 1 -> Ast.LocalGet 0
  | 2 -> Ast.LocalTee 0
  | 3 -> Ast.IBinop (Ast.W64, int_ops.(Random.State.int rng 15))
  | 4 -> Ast.IUnop (Ast.W64, Ast.Popcnt)
  | 5 ->
      Ast.Load (Types.I64, None,
                { Ast.offset = Int64.of_int (Random.State.int rng 200000);
                  align = 0 })
  | 6 -> Ast.Cvtop Ast.I32WrapI64
  | 7 -> Ast.Cvtop Ast.I64ExtendI32S
  | 8 -> Ast.ITestop Ast.W64
  | 9 -> Ast.IUnop (Ast.W64, Ast.Clz)
  | 10 -> Ast.I64Const 16L
  | _ -> Ast.PointerSign

let prop_validated_soup_never_crashes =
  QCheck.Test.make
    ~name:"validated instruction soups trap cleanly or return" ~count:300
    QCheck.(pair small_int (int_bound 40))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed |] in
      let body = List.init (max 1 len) (fun _ -> random_instr rng) in
      (* normalise the stack: drop everything, then push a result *)
      let body =
        [ Ast.I64Const 0L; Ast.LocalSet 0 ]
        @ List.concat_map
            (fun i ->
              (* keep the stack balanced: save intermediate into local 0 *)
              match i with
              | Ast.IBinop _ ->
                  [ Ast.LocalGet 0; Ast.LocalGet 0; i; Ast.LocalSet 0 ]
              | Ast.IUnop _ | Ast.Load _ | Ast.PointerSign ->
                  [ Ast.LocalGet 0; i; Ast.LocalSet 0 ]
              | Ast.ITestop _ ->
                  [ Ast.LocalGet 0; i; Ast.Cvtop Ast.I64ExtendI32S;
                    Ast.LocalSet 0 ]
              | Ast.Cvtop Ast.I32WrapI64 ->
                  [ Ast.LocalGet 0; i; Ast.Cvtop Ast.I64ExtendI32S;
                    Ast.LocalSet 0 ]
              | Ast.Cvtop _ -> []
              | Ast.LocalGet _ | Ast.LocalTee _ -> []
              | i -> [ i; Ast.LocalSet 0 ])
            body
        @ [ Ast.LocalGet 0 ]
      in
      let m = module_of [ (ft [] [ Types.I64 ], [ Types.I64 ], body) ] in
      match Validate.validate m with
      | Error _ -> true (* only validated modules are in scope *)
      | Ok () -> (
          match Exec.invoke (Exec.instantiate m) "f0" [] with
          | _ -> true
          | exception Instance.Trap _ -> true
          | exception _ -> false))

let test_grow_then_segment_in_new_region () =
  (* memory.grow must extend the tag space so segments work in the
     fresh pages *)
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [ Types.I64 ],
         [ Ast.I64Const 2L; Ast.MemoryGrow; Ast.Drop;
           (* a segment in the second page, beyond the original 64 KiB *)
           Ast.I64Const 70000L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 9L;
           Ast.Store (Types.I64, None, memarg ());
           Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()) ]) ]
  in
  (* 70000 is not 16-aligned: use 70016 *)
  let m =
    match m.Ast.funcs with
    | [ f ] ->
        { m with
          Ast.funcs =
            [ { f with
                Ast.body =
                  List.map
                    (function
                      | Ast.I64Const 70000L -> Ast.I64Const 70016L
                      | i -> i)
                    f.Ast.body } ] }
    | _ -> m
  in
  Alcotest.(check (list value)) "segment in grown region" [ Values.I64 9L ]
    (run_f0 m [])

let test_meter_total_consistency () =
  let meter = Meter.create () in
  let config = { Instance.default_config with meter = Some meter } in
  let m =
    module_of
      [ (ft [] [ Types.I64 ], [],
         [ Ast.I64Const 5L; Ast.I64Const 6L; Ast.IBinop (Ast.W64, Ast.Add) ])
      ]
  in
  ignore (run_f0 ~config m []);
  Alcotest.(check int) "total = consts + alu" 3 (Meter.total meter)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_i64_binop_matches_ocaml; prop_store_load_identity;
      prop_segment_lifecycle; prop_validated_soup_never_crashes ]

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "wasm"
    [
      ( "semantics",
        [
          tc "i32 arith" test_i32_arith;
          tc "div by zero traps" test_div_by_zero_traps;
          tc "div overflow traps" test_div_overflow_traps;
          tc "unreachable traps" test_unreachable_traps;
          tc "block br" test_block_br;
          tc "loop countdown" test_loop_countdown;
          tc "nested br depth" test_nested_br_depth;
          tc "br_table" test_br_table;
          tc "if/else" test_if_else;
          tc "select" test_select;
          tc "globals" test_globals;
          tc "call" test_call;
          tc "host import" test_host_import;
          tc "call_indirect" test_call_indirect;
          tc "call_indirect type mismatch" test_call_indirect_type_mismatch;
          tc "call_indirect oob" test_call_indirect_oob;
          tc "call_indirect null" test_call_indirect_null;
          tc "recursion exhausts" test_recursion_exhausts;
        ] );
      ( "memory",
        [
          tc "store/load roundtrip" test_store_load_roundtrip;
          tc "offset folding" test_load_offset_folding;
          tc "packed sign extension" test_packed_sign_extension;
          tc "oob load traps" test_oob_load_traps;
          tc "oob store at edge" test_oob_store_edge;
          tc "grow/size" test_memory_grow_size;
          tc "grow beyond max fails" test_memory_grow_beyond_max_fails;
          tc "fill and copy" test_memory_fill_and_copy;
          tc "wasm32 addressing" test_wasm32_memory_addressing;
          tc "data segments" test_data_segment_applied;
        ] );
      ( "numeric-edges",
        [
          tc "bit counts" test_bitcount_ops;
          tc "rotates" test_rotates;
          tc "div/rem signs" test_div_rem_signs;
          tc "trunc traps" test_trunc_traps;
          tc "unsigned conversions" test_unsigned_conversions;
          tc "reinterpret roundtrip" test_reinterpret_roundtrip;
          tc "f32 rounding" test_f32_rounding_visible;
          tc "br_table negative" test_br_table_negative_index;
          tc "packed store truncates" test_packed_store_truncates;
          tc "fmin nan" test_fmin_nan_propagates;
        ] );
      ( "validation",
        [
          tc "type mismatch" test_validate_type_mismatch;
          tc "stack underflow" test_validate_stack_underflow;
          tc "bad br depth" test_validate_bad_br_depth;
          tc "leftover values" test_validate_leftover_values;
          tc "immutable global" test_validate_immutable_global;
          tc "local oob" test_validate_local_oob;
          tc "align too large" test_validate_align_too_large;
          tc "unreachable polymorphism" test_validate_unreachable_polymorphism;
          tc "cage requires feature" test_validate_cage_requires_feature;
          tc "cage requires memory64" test_validate_cage_requires_memory64;
          tc "cage typing accepts" test_validate_cage_typing;
          tc "pointer_sign wants i64" test_validate_pointer_sign_type;
          tc "segment unaligned offset" test_validate_segment_unaligned_offset;
          tc "segment negative offset" test_validate_segment_negative_offset;
          tc "segment no tag space" test_validate_segment_no_tag_space;
          tc "segment operand types" test_validate_segment_operand_types;
          tc "segment requires memory" test_validate_segment_requires_memory;
        ] );
      ( "cage-extension",
        [
          tc "segment.new rw" test_segment_new_rw;
          tc "segment overflow traps" test_segment_overflow_traps;
          tc "untagged access traps" test_segment_untagged_access_traps;
          tc "segment.new zeroes" test_segment_new_zeroes;
          tc "use-after-free traps" test_segment_free_catches_uaf;
          tc "double free traps" test_segment_double_free_traps;
          tc "unaligned traps" test_segment_unaligned_traps;
          tc "oob segment traps" test_segment_oob_traps;
          tc "set_tag transfers" test_segment_set_tag_transfers;
          tc "checks off for baseline" test_segment_disabled_tags_ignored;
          tc "sign/auth roundtrip" test_pointer_sign_auth_roundtrip;
          tc "auth unsigned traps" test_pointer_auth_unsigned_traps;
          tc "signed ptr cannot load" test_signed_pointer_cannot_load;
          tc "cross-instance auth fails" test_cross_instance_auth_fails;
          tc "meter counts" test_meter_counts;
          tc "grow then segment" test_grow_then_segment_in_new_region;
          tc "meter total consistency" test_meter_total_consistency;
        ] );
      ( "checked-bulk",
        [
          tc "fill over freed segment traps (sync)"
            test_fill_freed_segment_traps_sync;
          tc "copy from freed segment traps (sync)"
            test_copy_freed_segment_traps_sync;
          tc "fill over freed segment defers sticky (async)"
            test_fill_freed_async_deferred_sticky;
          tc "asymmetric: store side faults sync"
            test_asymmetric_fill_store_sync;
          tc "asymmetric: load side defers"
            test_asymmetric_copy_load_async;
          tc "zero-length fill/copy at boundary"
            test_zero_length_bulk_at_boundary;
          tc "memory.grow 0 queries" test_memory_grow_zero_queries;
          tc "br_table bad label hard-traps" test_br_table_bad_label_traps;
        ] );
      ("wasm-properties", qtests);
    ]
