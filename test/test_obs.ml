(* Tests for the observability substrate (lib/obs): ring-buffer tracer,
   metrics registry, sampling profiler, the zero-cost-when-disabled
   hook contract, the supervisor's black-box flight recording, and the
   Report.table ragged-row regression. *)

open Wasm

(* ------------------------------------------------------------------ *)
(* Builders (same shapes as test_wasm)                                 *)
(* ------------------------------------------------------------------ *)

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let module_of funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory = Some mem64;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let instantiate ?config m =
  (match Validate.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validation failed: %s" e);
  Exec.instantiate ?config m

let memarg offset = { Ast.offset; align = 0 }

(* ------------------------------------------------------------------ *)
(* Trace: ring buffer and cycle clock                                  *)
(* ------------------------------------------------------------------ *)

let test_ring_keeps_newest () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Trace.record tr ~tid:1 (Obs.Event.Spawn { instance = i })
  done;
  Alcotest.(check int) "all records counted" 10 (Obs.Trace.recorded tr);
  Alcotest.(check int) "overflow dropped oldest" 6 (Obs.Trace.dropped tr);
  let instance_of r =
    match r.Obs.Trace.ev with
    | Obs.Event.Spawn { instance } -> instance
    | _ -> -1
  in
  Alcotest.(check (list int)) "survivors are the newest, oldest first"
    [ 6; 7; 8; 9 ]
    (List.map instance_of (Obs.Trace.records tr));
  Alcotest.(check (list int)) "recent takes the tail" [ 8; 9 ]
    (List.map instance_of (Obs.Trace.recent tr 2))

let test_clock_monotone () =
  let tr = Obs.Trace.create () in
  Obs.Trace.record tr ~tid:1 (Obs.Event.Host_call { name = "a" });
  Obs.Trace.advance tr 3;
  Obs.Trace.record tr ~tid:1
    (Obs.Event.Seg_new { addr = 0L; len = 64L; granules = 4; tag = 3 });
  Obs.Trace.record tr ~tid:1 (Obs.Event.Pac_sign { ptr = 0L });
  let cycles = List.map (fun r -> r.Obs.Trace.cycle) (Obs.Trace.records tr) in
  (* host 20; +3 ticks; seg_new 2 + 4/2 = 4; pac 5 *)
  Alcotest.(check (list int)) "per-event costs land on a monotone clock"
    [ 20; 27; 32 ] cycles;
  Alcotest.(check int) "clock reads the final stamp" 32 (Obs.Trace.clock tr)

let test_chrome_json_shape () =
  let tr = Obs.Trace.create () in
  Obs.Trace.record tr ~tid:7 (Obs.Event.Func_enter { idx = 0; name = "main" });
  Obs.Trace.record tr ~tid:7
    (Obs.Event.Tag_fault
       { addr = 0x420L; len = 1L; ptr_tag = 5; mem_tag = Some 0;
         access = Obs.Event.Store; deferred = false });
  let json = Obs.Trace.to_chrome_json tr in
  let has s = Astring.String.is_infix ~affix:s json in
  Alcotest.(check bool) "has traceEvents" true (has "\"traceEvents\"");
  Alcotest.(check bool) "func enter is a B phase" true (has "\"ph\":\"B\"");
  Alcotest.(check bool) "fault is named" true
    (has "\"name\":\"tag-check-fault\"");
  Alcotest.(check bool) "tid carried through" true (has "\"tid\":7");
  Alcotest.(check bool) "args carry the address" true (has "\"addr\":\"0x420\"")

(* ------------------------------------------------------------------ *)
(* The disabled fast path allocates nothing                            *)
(* ------------------------------------------------------------------ *)

(* The exact call-site pattern every instrumented layer uses: a
   span_check, an enabled() guard around an event construction, and a
   direct match on the hook ref. With no sink installed, a hundred
   thousand rounds must not allocate — the event record behind the
   untaken guard never exists. *)
let test_disabled_path_no_alloc () =
  Obs.Hook.uninstall ();
  let rounds = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to rounds do
    Obs.Hook.span_check i;
    if Obs.Hook.enabled () then
      Obs.Hook.event
        (Obs.Event.Seg_new
           { addr = Int64.of_int i; len = 64L; granules = 4; tag = 1 });
    match !Obs.Hook.hook with
    | None -> ()
    | Some _ -> Obs.Hook.set_instance i
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%d disabled rounds allocated %.0f words" rounds dw)
    true
    (dw < float_of_int rounds /. 100.0)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_render () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r ~help:"test counter" "t_total" in
  let h =
    Obs.Metrics.histogram r ~bounds:[| 1.0; 4.0 |] ~help:"test histo" "t_h"
  in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:2 c;
  List.iter (Obs.Metrics.observe h) [ 0.5; 3.0; 100.0 ];
  let prom = Obs.Metrics.prometheus_string r in
  let has s = Astring.String.is_infix ~affix:s prom in
  Alcotest.(check bool) "counter line" true (has "t_total 3");
  Alcotest.(check bool) "TYPE line" true (has "# TYPE t_total counter");
  Alcotest.(check bool) "bucket counts are cumulative" true
    (has "t_h_bucket{le=\"1\"} 1" && has "t_h_bucket{le=\"4\"} 2"
    && has "t_h_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "sum and count" true
    (has "t_h_sum 103.5" && has "t_h_count 3");
  Alcotest.(check bool) "counter renders before the histogram" true
    (Astring.String.find_sub ~sub:"t_total" prom
    < Astring.String.find_sub ~sub:"t_h_bucket" prom);
  let json = Obs.Metrics.to_json r in
  Alcotest.(check bool) "json has the counter" true
    (Astring.String.is_infix ~affix:"\"t_total\": 3" json)

let test_metrics_observe_events () =
  let m = Obs.Metrics.cage () in
  Obs.Metrics.observe_event m
    (Obs.Event.Seg_new { addr = 0L; len = 64L; granules = 4; tag = 1 });
  Obs.Metrics.observe_event m
    (Obs.Event.Seg_free { addr = 0L; len = 64L; granules = 4; tag = 2 });
  Obs.Metrics.observe_event m
    (Obs.Event.Tag_fault
       { addr = 0L; len = 8L; ptr_tag = 1; mem_tag = Some 2;
         access = Obs.Event.Load; deferred = true });
  Alcotest.(check int) "seg ops counted" 1
    m.Obs.Metrics.seg_new.Obs.Metrics.c_value;
  Alcotest.(check int) "granules accumulate across ops" 8
    m.Obs.Metrics.granules_tagged.Obs.Metrics.c_value;
  Alcotest.(check int) "deferred fault lands on its own counter" 1
    m.Obs.Metrics.tag_faults_deferred.Obs.Metrics.c_value;
  Alcotest.(check int) "sync-fault counter untouched" 0
    m.Obs.Metrics.tag_faults.Obs.Metrics.c_value

(* A near-miss: an Allowed access whose span's following granule holds
   a different tag. Driven through Mte.check directly: granule [0,16)
   tagged 5, [16,48) tagged 9 — the access ending at 15 brushes the
   boundary, the one ending at 23 does not. *)
let test_near_miss_counter () =
  let tm = Arch.Tag_memory.create ~size_bytes:256 in
  let t5 = Arch.Tag.of_int 5 and t9 = Arch.Tag.of_int 9 in
  (match Arch.Tag_memory.set_region tm ~addr:0L ~len:16L t5 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Arch.Tag_memory.set_region tm ~addr:16L ~len:32L t9 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let mte = Arch.Mte.create tm in
  let metrics = Obs.Metrics.cage () in
  Obs.Hook.with_sink (Obs.Hook.make ~metrics ()) (fun () ->
      (match
         Arch.Mte.check mte Arch.Mte.Load ~ptr:(Arch.Ptr.with_tag 8L t5)
           ~len:8L
       with
      | Arch.Mte.Allowed -> ()
      | _ -> Alcotest.fail "in-segment access must be Allowed");
      (* same-tag neighbour: no near-miss *)
      match
        Arch.Mte.check mte Arch.Mte.Load ~ptr:(Arch.Ptr.with_tag 16L t9)
          ~len:8L
      with
      | Arch.Mte.Allowed -> ()
      | _ -> Alcotest.fail "in-segment access must be Allowed");
  Alcotest.(check int) "exactly the boundary access is a near miss" 1
    metrics.Obs.Metrics.near_misses.Obs.Metrics.c_value

(* ------------------------------------------------------------------ *)
(* Profiler: weights partition the meter total exactly                 *)
(* ------------------------------------------------------------------ *)

(* f0 spins a coarse loop calling f1; f1 burns a finer loop. With the
   sink installed, folded weights must sum to the meter total exactly
   (after flush) — the profile is a loss-free partition of the run, not
   an approximate sample count. *)
let two_function_module =
  let counted_loop limit body =
    [ Ast.I64Const 0L; Ast.LocalSet 0;
      Ast.Block
        (Ast.ValBlock None,
         [ Ast.Loop
             (Ast.ValBlock None,
              body
              @ [ Ast.LocalGet 0; Ast.I64Const 1L;
                  Ast.IBinop (Ast.W64, Ast.Add); Ast.LocalTee 0;
                  Ast.I64Const limit; Ast.IRelop (Ast.W64, Ast.GeS);
                  Ast.BrIf 1; Ast.Br 0 ]) ]) ]
  in
  module_of
    [ (ft [] [], [ Types.I64 ],
       counted_loop 50L [ Ast.Call 1; Ast.Drop ]);
      (ft [] [ Types.I64 ], [ Types.I64 ],
       counted_loop 20L [] @ [ Ast.LocalGet 0 ]) ]

let test_profiler_partitions_meter () =
  let meter = Meter.create () in
  let profiler = Obs.Profiler.create ~interval:13 () in
  Obs.Hook.with_sink
    (Obs.Hook.make ~profiler ())
    (fun () ->
      let inst =
        instantiate
          ~config:{ Instance.default_config with meter = Some meter }
          two_function_module
      in
      ignore (Exec.invoke inst "f0" []));
  let total = Meter.total meter in
  Obs.Profiler.flush profiler ~stack:[] ~total;
  Alcotest.(check bool) "profiler took samples" true
    (Obs.Profiler.samples profiler > 1);
  Alcotest.(check int) "folded weights sum exactly to the meter total" total
    (Obs.Profiler.total_weight profiler);
  let name i = Printf.sprintf "f%d" i in
  let folded_sum =
    List.fold_left (fun a (_, w) -> a + w) 0 (Obs.Profiler.folded profiler ~name)
  in
  Alcotest.(check int) "folded lines agree" total folded_sum;
  let attr = Obs.Profiler.attribution profiler ~name in
  let self_sum = List.fold_left (fun a r -> a + r.Obs.Profiler.self) 0 attr in
  Alcotest.(check int) "self column partitions the total (100%)" total self_sum;
  let find fn = List.find_opt (fun r -> r.Obs.Profiler.fn = fn) attr in
  match (find "f0", find "f1") with
  | Some a0, Some a1 ->
      Alcotest.(check bool) "inner loop dominates self time" true
        (a1.Obs.Profiler.self > a0.Obs.Profiler.self);
      Alcotest.(check bool) "caller total covers its callees" true
        (a0.Obs.Profiler.total >= a0.Obs.Profiler.self + a1.Obs.Profiler.self)
  | _ -> Alcotest.fail "both functions must appear in the attribution"

(* ------------------------------------------------------------------ *)
(* Supervisor black box                                                *)
(* ------------------------------------------------------------------ *)

(* Heap overflow: allocate a 32-byte segment, store one byte past its
   end. With a tracer installed, the post-mortem must embed the final K
   trace events, ending with the crash record itself. *)
let test_post_mortem_flight_recorder () =
  let k = 4 in
  let m =
    module_of
      [ (ft [] [], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg 32L) ]) ]
  in
  let trace = Obs.Trace.create () in
  let pm =
    Obs.Hook.with_sink
      (Obs.Hook.make ~trace ())
      (fun () ->
        let proc =
          Cage.Process.create ~config:Cage.Config.mem_safety ~seed:11 ()
        in
        let sup = Cage.Supervisor.create ~black_box:k proc in
        let inst = Cage.Supervisor.spawn sup m in
        match Cage.Supervisor.run sup inst "f0" [] with
        | Cage.Supervisor.Crashed pm -> pm
        | Cage.Supervisor.Finished _ -> Alcotest.fail "expected a tag fault")
  in
  Alcotest.(check string) "crash classified as a tag fault" "tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  let tr = pm.Cage.Supervisor.pm_trace in
  Alcotest.(check bool) "flight recording present, at most K events" true
    (List.length tr > 0 && List.length tr <= k);
  Alcotest.(check bool) "recording ends with the crash record" true
    (Astring.String.is_infix ~affix:"crash [tag fault]"
       (List.nth tr (List.length tr - 1)));
  Alcotest.(check bool) "the faulting store is on the recording" true
    (List.exists (Astring.String.is_infix ~affix:"tag-check-fault") tr);
  Alcotest.(check bool) "every line is cycle-stamped" true
    (List.for_all (Astring.String.is_prefix ~affix:"[cycle ") tr);
  let report = Format.asprintf "%a" Cage.Supervisor.pp_post_mortem pm in
  Alcotest.(check bool) "report prints the flight recording" true
    (Astring.String.is_infix ~affix:"flight rec" report)

(* Without a tracer the post-mortem carries no recording, and the
   report omits the section entirely (the detection-matrix golden
   stays byte-identical). *)
let test_post_mortem_empty_without_tracer () =
  Obs.Hook.uninstall ();
  let m =
    module_of
      [ (ft [] [], [],
         [ Ast.I64Const 100000L; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg 0L) ]) ]
  in
  let proc = Cage.Process.create ~config:Cage.Config.mem_safety ~seed:11 () in
  let sup = Cage.Supervisor.create proc in
  let inst = Cage.Supervisor.spawn sup m in
  match Cage.Supervisor.run sup inst "f0" [] with
  | Cage.Supervisor.Crashed pm ->
      Alcotest.(check (list string)) "no tracer, no recording" []
        pm.Cage.Supervisor.pm_trace;
      let report = Format.asprintf "%a" Cage.Supervisor.pp_post_mortem pm in
      Alcotest.(check bool) "report omits the flight-recorder section" false
        (Astring.String.is_infix ~affix:"flight rec" report)
  | Cage.Supervisor.Finished _ -> Alcotest.fail "expected a bounds crash"

(* ------------------------------------------------------------------ *)
(* Trace-ring drop visibility                                          *)
(* ------------------------------------------------------------------ *)

(* Wraparound through the full hook path: the ring silently overwrote
   its oldest records before this satellite; now the drop count is a
   first-class signal — mirrored into cage_trace_dropped_total and
   flagged by a single warning instant in the Chrome export. *)
let test_ring_drops_visible () =
  let tr = Obs.Trace.create ~capacity:4 () in
  let m = Obs.Metrics.cage () in
  Obs.Hook.with_sink
    (Obs.Hook.make ~trace:tr ~metrics:m ())
    (fun () ->
      for i = 0 to 9 do
        Obs.Hook.event (Obs.Event.Spawn { instance = i })
      done);
  Alcotest.(check int) "ring dropped the six oldest" 6 (Obs.Trace.dropped tr);
  Alcotest.(check int) "cage_trace_dropped_total mirrors the ring" 6
    m.Obs.Metrics.trace_dropped.Obs.Metrics.c_value;
  let json = Obs.Trace.to_chrome_json tr in
  let has s = Astring.String.is_infix ~affix:s json in
  Alcotest.(check bool) "export warns about the gap" true
    (has "\"name\":\"trace-dropped\"");
  Alcotest.(check bool) "warning carries the drop count" true
    (has "\"dropped\":6");
  Alcotest.(check int) "one warning instant, not one per lost record" 1
    (List.length (Astring.String.cuts ~sep:"trace-dropped" json) - 1);
  (* a ring that never wrapped exports no warning *)
  let quiet = Obs.Trace.create ~capacity:16 () in
  Obs.Trace.record quiet ~tid:1 (Obs.Event.Spawn { instance = 0 });
  Alcotest.(check bool) "no drops, no warning" false
    (Astring.String.is_infix ~affix:"trace-dropped"
       (Obs.Trace.to_chrome_json quiet))

(* ------------------------------------------------------------------ *)
(* Request spans                                                       *)
(* ------------------------------------------------------------------ *)

let test_span_records_and_json () =
  let r = Obs.Span.create () in
  Obs.Span.with_recorder r (fun () ->
      Obs.Span.set_track ~tid:1 "core 0";
      Obs.Span.set_track ~tid:(Obs.Span.tenant_tid 0) "tenant compute";
      Obs.Span.set_now 100;
      let id = Obs.Span.fresh_id () in
      Obs.Span.async_begin ~id ~tid:(Obs.Span.tenant_tid 0) ~ts:100 "request";
      Obs.Span.flow_start ~id ~tid:(Obs.Span.tenant_tid 0) ~ts:100 "queue";
      Obs.Span.complete
        ~args:[ ("req", Obs.Span.I id) ]
        ~tid:1 ~start:100 ~stop:250 "t:compute";
      Obs.Span.flow_step ~id ~tid:1 ~ts:100 "t:compute";
      Obs.Span.instant ~tid:Obs.Span.runtime_tid "pool.acquire";
      Obs.Span.flow_end ~id ~tid:(Obs.Span.tenant_tid 0) ~ts:250 "done";
      Obs.Span.async_end ~id ~tid:(Obs.Span.tenant_tid 0) ~ts:250 "request");
  Alcotest.(check bool) "uninstalled after with_recorder" false
    (Obs.Span.enabled ());
  Alcotest.(check int) "seven records" 7 (Obs.Span.size r);
  let json = Obs.Span.to_chrome_json r in
  let has s = Astring.String.is_infix ~affix:s json in
  Alcotest.(check bool) "core track named" true (has "\"name\":\"core 0\"");
  Alcotest.(check bool) "tenant track named" true
    (has "\"name\":\"tenant compute\"");
  Alcotest.(check bool) "complete slice with duration" true
    (has "\"ph\":\"X\"" && has "\"dur\":150");
  Alcotest.(check bool) "async envelope" true
    (has "\"ph\":\"b\"" && has "\"ph\":\"e\"");
  Alcotest.(check bool) "flow start/step/finish" true
    (has "\"ph\":\"s\"" && has "\"ph\":\"t\"" && has "\"ph\":\"f\"");
  Alcotest.(check bool) "flow finish binds to the enclosing slice" true
    (has "\"bp\":\"e\"");
  Alcotest.(check bool) "instant lands on the runtime track" true
    (has "\"name\":\"pool.acquire\"");
  Alcotest.(check bool) "des clock declared" true (has "\"clock\":\"des-cycles\"")

(* Same contract as the hook: a serving loop running with no recorder
   installed must not allocate on the guarded call sites. *)
let test_span_disabled_no_alloc () =
  Obs.Span.uninstall ();
  let rounds = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to rounds do
    Obs.Span.set_now i;
    if Obs.Span.enabled () then
      Obs.Span.instant ~tid:1 ~args:[ ("req", Obs.Span.I i) ] "never"
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%d disabled span rounds allocated %.0f words" rounds dw)
    true (dw < 256.0)

(* The span recorder bounds memory by dropping the *newest* records —
   the opposite policy from the Trace flight recorder, which keeps a
   crash's final moments. For request traces the run's start is the
   context everything later refers to. *)
let test_span_capacity_drops_newest () =
  let r = Obs.Span.create ~capacity:4 () in
  Obs.Span.with_recorder r (fun () ->
      for i = 0 to 9 do
        Obs.Span.instant ~tid:1 ~ts:i (Printf.sprintf "ev%d" i)
      done);
  Alcotest.(check int) "capacity respected" 4 (Obs.Span.size r);
  Alcotest.(check int) "six newest dropped" 6 (Obs.Span.dropped r);
  Alcotest.(check (list string)) "survivors are the oldest, in order"
    [ "ev0"; "ev1"; "ev2"; "ev3" ]
    (List.map (fun rec_ -> rec_.Obs.Span.r_name) (Obs.Span.records r));
  Alcotest.(check bool) "export reports the drop count" true
    (Astring.String.is_infix ~affix:"\"dropped\":6"
       (Obs.Span.to_chrome_json r))

(* ------------------------------------------------------------------ *)
(* Report.table ragged rows (satellite regression)                     *)
(* ------------------------------------------------------------------ *)

let test_table_ragged_rows () =
  let header = [ "a"; "bb"; "ccc" ] in
  let render rows =
    Format.asprintf "%t" (fun ppf -> Harness.Report.table ppf ~header rows)
  in
  (* used to raise Invalid_argument from List.map2; now a short row
     renders as if padded with empty cells ... *)
  Alcotest.(check string) "short row is padded"
    (render [ [ "only"; ""; "" ] ])
    (render [ [ "only" ] ]);
  (* ... and a long row as if truncated to the header's width *)
  Alcotest.(check string) "long row is truncated"
    (render [ [ "1"; "2"; "3" ] ])
    (render [ [ "1"; "2"; "3"; "extra" ] ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring keeps newest" `Quick test_ring_keeps_newest;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "drops visible end-to-end" `Quick
            test_ring_drops_visible;
        ] );
      ( "span",
        [
          Alcotest.test_case "records + chrome json" `Quick
            test_span_records_and_json;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_span_disabled_no_alloc;
          Alcotest.test_case "capacity drops newest" `Quick
            test_span_capacity_drops_newest;
        ] );
      ( "hook",
        [
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_no_alloc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "prometheus/json rendering" `Quick
            test_metrics_render;
          Alcotest.test_case "event dispatch" `Quick test_metrics_observe_events;
          Alcotest.test_case "near-miss counter" `Quick test_near_miss_counter;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "weights partition the meter" `Quick
            test_profiler_partitions_meter;
        ] );
      ( "black-box",
        [
          Alcotest.test_case "post-mortem embeds final events" `Quick
            test_post_mortem_flight_recorder;
          Alcotest.test_case "empty without tracer" `Quick
            test_post_mortem_empty_without_tracer;
        ] );
      ( "report",
        [
          Alcotest.test_case "ragged rows normalized" `Quick
            test_table_ragged_rows;
        ] );
    ]
