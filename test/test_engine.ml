(* Engine-parity tests: the direct-threaded engine must be
   observationally identical to the reference interpreter — same
   results, same trap messages (including the trap-prefix taxonomy),
   same deferred-fault sync points, same fuel accounting — on the
   control-flow and fault edge cases where a compiled dispatch most
   plausibly diverges from a tree-walker. *)

open Wasm

let value = Alcotest.testable Values.pp Values.equal
let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let module_of ?(memory = Some mem64) funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let engines = [ ("interp", Instance.Interp); ("threaded", Instance.Threaded) ]

(* Run [name] on a fresh instance per engine and return the outcomes
   (result or trap message) paired with the meters. *)
let on_both ?(config = Instance.default_config) m name args =
  List.map
    (fun (label, engine) ->
      let meter = Meter.create () in
      let config = { config with Instance.engine; meter = Some meter } in
      let outcome =
        match Exec.invoke (Exec.instantiate ~config m) name args with
        | vs -> Ok vs
        | exception Instance.Trap msg -> Error msg
      in
      (label, outcome, meter))
    engines

(* Assert both engines produced [expected] and identical meters. *)
let check_both ?config m name args expected =
  let results = on_both ?config m name args in
  List.iter
    (fun (label, outcome, _) ->
      match outcome with
      | Ok vs -> Alcotest.(check (list value)) label expected vs
      | Error msg -> Alcotest.failf "%s trapped: %s" label msg)
    results;
  match results with
  | [ (_, _, m_i); (_, _, m_t) ] ->
      Alcotest.(check bool) "meters bit-identical" true (m_i = m_t)
  | _ -> assert false

(* Tag identities are drawn from a per-instance RNG keyed on a global
   instance counter, so two fresh instances legitimately report
   different [#n] tag values in otherwise identical trap messages.
   Mask the digits after '#' so the comparison pins everything else:
   fault kind, access size, address, memory-vs-tag role. *)
let mask_tags msg =
  let b = Buffer.create (String.length msg) in
  let n = String.length msg in
  let i = ref 0 in
  while !i < n do
    let c = msg.[!i] in
    Buffer.add_char b c;
    incr i;
    if c = '#' then begin
      while !i < n && msg.[!i] >= '0' && msg.[!i] <= '9' do incr i done;
      Buffer.add_char b 'N'
    end
  done;
  Buffer.contents b

(* Assert both engines trapped with the same message (modulo tags). *)
let check_both_trap ?config ~substring m name args =
  let results = on_both ?config m name args in
  let msgs =
    List.map
      (fun (label, outcome, _) ->
        match outcome with
        | Ok _ -> Alcotest.failf "%s: expected trap containing %S" label
                    substring
        | Error msg ->
            if not (Astring.String.is_infix ~affix:substring msg) then
              Alcotest.failf "%s: trap %S does not mention %S" label msg
                substring;
            msg)
      results
  in
  match msgs with
  | [ mi; mt ] ->
      Alcotest.(check string) "identical trap message" (mask_tags mi)
        (mask_tags mt)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Control-flow edge cases                                              *)
(* ------------------------------------------------------------------ *)

let test_br_table_bad_label () =
  (* an unvalidated body whose br_table target has no enclosing block
     must hard-trap identically through both dispatch paths — the
     threaded compiler bakes a Bad_label op, never a guessed branch *)
  let m =
    module_of
      [ (ft [] [], [],
         [ Ast.Block
             (Ast.ValBlock None,
              [ Ast.I32Const 0l; Ast.BrTable ([ 5 ], 6) ]) ]) ]
  in
  check_both_trap ~substring:"branch depth" m "f0" []

let test_zero_iteration_loop () =
  (* the loop header is entered once, the back-edge never taken: the
     fall-through must not re-run the body or desync the stack *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [ Types.I32 ],
         [ Ast.Block
             (Ast.ValBlock None,
              [ Ast.Loop
                  (Ast.ValBlock None,
                   [ Ast.LocalGet 0; Ast.BrIf 0 ]) ]);
           Ast.I32Const 42l ]) ]
  in
  check_both m "f0" [] [ Values.I32 42l ]

let test_if_empty_else () =
  (* a false condition with an empty else arm falls through cleanly *)
  let m =
    module_of
      [ (ft [ Types.I32 ] [ Types.I32 ], [ Types.I32 ],
         [ Ast.LocalGet 0;
           Ast.If (Ast.ValBlock None, [ Ast.I32Const 7l; Ast.LocalSet 1 ], []);
           Ast.LocalGet 1 ]) ]
  in
  check_both m "f0" [ Values.I32 0l ] [ Values.I32 0l ];
  check_both m "f0" [ Values.I32 1l ] [ Values.I32 7l ]

(* ------------------------------------------------------------------ *)
(* Deferred (TFSR) faults drain at the same sync points                 *)
(* ------------------------------------------------------------------ *)

(* Allocate a segment, free it, then touch it: the access faults. *)
let freed_segment_module after =
  module_of
    [ (ft [] [], [ Types.I64 ],
       [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
         Ast.LocalSet 0;
         Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L ]
       @ after) ]

let memarg () = { Ast.offset = 0L; align = 3 }

let test_async_deferred_same_sync_point () =
  (* Async mode: the faulting store proceeds, the mismatch latches, and
     both engines report the same sticky first fault at the same sync
     point (function return) *)
  let m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.I64Const 99L; Ast.Store (Types.I64, None, memarg ());
        Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()); Ast.Drop ]
  in
  let config = { Instance.default_config with mte_mode = Arch.Mte.Async } in
  check_both_trap ~config ~substring:"deferred" m "f0" []

let test_asymmetric_store_sync_load_deferred () =
  (* Asymmetric: stores trap synchronously (identical immediate trap),
     loads latch and drain at return *)
  let store_m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.I64Const 99L;
        Ast.Store (Types.I64, None, memarg ()) ]
  in
  let load_m =
    freed_segment_module
      [ Ast.LocalGet 0; Ast.Load (Types.I64, None, memarg ()); Ast.Drop ]
  in
  let config =
    { Instance.default_config with mte_mode = Arch.Mte.Asymmetric }
  in
  check_both_trap ~config ~substring:"tag fault" store_m "f0" [];
  check_both_trap ~config ~substring:"deferred" load_m "f0" []

(* ------------------------------------------------------------------ *)
(* Fuel watchdog parity                                                 *)
(* ------------------------------------------------------------------ *)

let test_fuel_exhaustion_identical () =
  (* a runaway loop must burn its budget to exactly zero and trap with
     the same message on both engines *)
  let m =
    module_of [ (ft [] [], [], [ Ast.Loop (Ast.ValBlock None, [ Ast.Br 0 ]) ]) ]
  in
  let config = { Instance.default_config with fuel = 10_000 } in
  check_both_trap ~config ~substring:"fuel" m "f0" []

let test_fuel_remaining_identical () =
  (* a terminating loop leaves the same fuel on both engines: every
     branch and call burns exactly one unit in the same places *)
  let m =
    module_of
      [ (ft [] [ Types.I32 ], [ Types.I32 ],
         [ Ast.I32Const 50l; Ast.LocalSet 0;
           Ast.Block
             (Ast.ValBlock None,
              [ Ast.Loop
                  (Ast.ValBlock None,
                   [ Ast.LocalGet 0; Ast.I32Const 1l;
                     Ast.IBinop (Ast.W32, Ast.Sub); Ast.LocalSet 0;
                     Ast.LocalGet 0; Ast.BrIf 0 ]) ]);
           Ast.LocalGet 0 ]) ]
  in
  let left =
    List.map
      (fun (label, engine) ->
        let config =
          { Instance.default_config with Instance.engine; fuel = 10_000 }
        in
        let inst = Exec.instantiate ~config m in
        (match Exec.invoke inst "f0" [] with
        | [ Values.I32 0l ] -> ()
        | vs ->
            Alcotest.failf "%s: unexpected result %s" label
              (Format.asprintf "%a"
                 (Format.pp_print_list Values.pp)
                 vs));
        inst.Instance.fuel)
      engines
  in
  match left with
  | [ f_i; f_t ] ->
      Alcotest.(check int) "identical fuel remaining" f_i f_t;
      Alcotest.(check bool) "fuel was actually burned" true (f_i < 10_000)
  | _ -> assert false

let () =
  Alcotest.run "engine"
    [
      ( "control",
        [
          Alcotest.test_case "br_table bad label" `Quick
            test_br_table_bad_label;
          Alcotest.test_case "zero-iteration loop" `Quick
            test_zero_iteration_loop;
          Alcotest.test_case "if with empty else" `Quick test_if_empty_else;
        ] );
      ( "faults",
        [
          Alcotest.test_case "async deferred drains at return" `Quick
            test_async_deferred_same_sync_point;
          Alcotest.test_case "asymmetric store sync, load deferred" `Quick
            test_asymmetric_store_sync_load_deferred;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "exhaustion identical" `Quick
            test_fuel_exhaustion_identical;
          Alcotest.test_case "remaining identical" `Quick
            test_fuel_remaining_identical;
        ] );
    ]
