(* Tests for the AArch64 MTE/PAC substrate. *)

open Arch

let tag = Alcotest.testable Tag.pp Tag.equal

(* ------------------------------------------------------------------ *)
(* Tag                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tag_of_int_wraps () =
  Alcotest.(check tag) "16 wraps to 0" Tag.zero (Tag.of_int 16);
  Alcotest.(check tag) "17 wraps to 1" (Tag.of_int_exn 1) (Tag.of_int 17);
  Alcotest.(check tag) "-1 masks to 15" (Tag.of_int_exn 15) (Tag.of_int (-1))

let test_tag_of_int_exn_rejects () =
  Alcotest.check_raises "16 rejected"
    (Invalid_argument "Tag.of_int_exn: tag out of range") (fun () ->
      ignore (Tag.of_int_exn 16));
  Alcotest.check_raises "-1 rejected"
    (Invalid_argument "Tag.of_int_exn: tag out of range") (fun () ->
      ignore (Tag.of_int_exn (-1)))

let test_tag_add_wraps () =
  Alcotest.(check tag) "15+1 = 0" Tag.zero (Tag.add (Tag.of_int 15) 1);
  Alcotest.(check tag) "7+8 = 15" (Tag.of_int 15) (Tag.add (Tag.of_int 7) 8)

let test_exclude_basics () =
  let ex = Tag.Exclude.of_list [ Tag.zero; Tag.of_int 5 ] in
  Alcotest.(check bool) "0 excluded" true (Tag.Exclude.mem ex Tag.zero);
  Alcotest.(check bool) "5 excluded" true (Tag.Exclude.mem ex (Tag.of_int 5));
  Alcotest.(check bool) "1 allowed" false (Tag.Exclude.mem ex (Tag.of_int 1));
  Alcotest.(check int) "14 allowed" 14 (Tag.Exclude.count_allowed ex)

let test_exclude_mask_roundtrip () =
  let mask = 0b1010_0000_0000_0001 in
  Alcotest.(check int) "mask roundtrip" mask
    Tag.Exclude.(to_mask (of_mask mask))

let test_next_allowed_skips_excluded () =
  let ex = Tag.Exclude.of_list [ Tag.zero; Tag.of_int 2 ] in
  Alcotest.(check tag) "1 -> 3 skipping 2" (Tag.of_int 3)
    (Tag.next_allowed ex (Tag.of_int 1));
  Alcotest.(check tag) "15 -> 1 skipping 0" (Tag.of_int 1)
    (Tag.next_allowed ex (Tag.of_int 15))

let test_next_allowed_all_excluded () =
  Alcotest.(check tag) "all excluded yields zero" Tag.zero
    (Tag.next_allowed Tag.Exclude.all (Tag.of_int 3))

let test_irg_respects_exclusion () =
  let ex = Tag.Exclude.of_list [ Tag.zero ] in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let t = Tag.irg ex ~rng:(fun n -> Random.State.int rng n) in
    Alcotest.(check bool) "irg never zero when excluded" false (Tag.is_zero t)
  done

let test_irg_all_excluded_is_zero () =
  Alcotest.(check tag) "irg under full exclusion" Tag.zero
    (Tag.irg Tag.Exclude.all ~rng:(fun _ -> 0))

let prop_irg_uniform_over_allowed =
  QCheck.Test.make ~name:"irg only generates allowed tags" ~count:500
    QCheck.(pair (int_bound 0xfffe) small_int)
    (fun (mask, seed) ->
      let ex = Tag.Exclude.of_mask mask in
      let rng = Random.State.make [| seed |] in
      let t = Tag.irg ex ~rng:(fun n -> Random.State.int rng n) in
      (not (Tag.Exclude.mem ex t)) || Tag.is_zero t)

let prop_next_allowed_never_excluded =
  QCheck.Test.make ~name:"next_allowed avoids exclusion set" ~count:500
    QCheck.(pair (int_bound 0x7fff) (int_bound 15))
    (fun (mask, t0) ->
      (* mask < 0x8000 leaves tag 15 allowed, so some tag is allowed *)
      let ex = Tag.Exclude.of_mask mask in
      not (Tag.Exclude.mem ex (Tag.next_allowed ex (Tag.of_int t0))))

(* ------------------------------------------------------------------ *)
(* Ptr                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ptr_tag_roundtrip () =
  let p = 0x0000_7fff_dead_bee0L in
  let tagged = Ptr.with_tag p (Tag.of_int 9) in
  Alcotest.(check tag) "tag read back" (Tag.of_int 9) (Ptr.tag tagged);
  Alcotest.(check int64) "address preserved" p (Ptr.address tagged)

let test_ptr_offset_preserves_tag () =
  let p = Ptr.with_tag 0x1000L (Tag.of_int 5) in
  let q = Ptr.offset p 0x230L in
  Alcotest.(check tag) "tag preserved" (Tag.of_int 5) (Ptr.tag q);
  Alcotest.(check int64) "address moved" 0x1230L (Ptr.address q)

let test_ptr_offset_wraps_48_bits () =
  let p = 0xffff_ffff_ffffL in
  Alcotest.(check int64) "wraps in 48-bit space" 0L
    (Ptr.address (Ptr.offset p 1L))

let test_ptr_mask_external () =
  let p = Ptr.with_tag 0x4000L (Tag.of_int 0xf) in
  Alcotest.(check tag) "all tag bits cleared" Tag.zero
    (Ptr.tag (Ptr.mask_external_only p))

let test_ptr_mask_combined () =
  (* bit 56 cleared, bits 57-59 preserved: tag 0b1111 -> 0b1110 *)
  let p = Ptr.with_tag 0x4000L (Tag.of_int 0xf) in
  Alcotest.(check tag) "only bit 56 cleared" (Tag.of_int 0b1110)
    (Ptr.tag (Ptr.mask_combined p));
  let q = Ptr.with_tag 0x4000L (Tag.of_int 0b0110) in
  Alcotest.(check tag) "already-clear bit unchanged" (Tag.of_int 0b0110)
    (Ptr.tag (Ptr.mask_combined q))

let test_pac_field_widths () =
  Alcotest.(check int) "10 bits with MTE" 10
    (Ptr.pac_bits { Ptr.mte_enabled = true });
  Alcotest.(check int) "14 bits without MTE" 14
    (Ptr.pac_bits { Ptr.mte_enabled = false })

let test_pac_field_mte_keeps_tag () =
  let layout = { Ptr.mte_enabled = true } in
  let p = Ptr.with_tag 0x1234L (Tag.of_int 7) in
  let signed = Ptr.with_pac_field layout p 0x3ff in
  Alcotest.(check tag) "MTE tag untouched by PAC field" (Tag.of_int 7)
    (Ptr.tag signed);
  Alcotest.(check int) "field read back" 0x3ff (Ptr.pac_field layout signed);
  Alcotest.(check int64) "address untouched" 0x1234L (Ptr.address signed)

let prop_pac_field_roundtrip =
  QCheck.Test.make ~name:"pac field pack/unpack roundtrip" ~count:1000
    QCheck.(triple int64 (int_bound 0x3fff) bool)
    (fun (p, v, mte) ->
      let layout = { Ptr.mte_enabled = mte } in
      let v = v land ((1 lsl Ptr.pac_bits layout) - 1) in
      Ptr.pac_field layout (Ptr.with_pac_field layout p v) = v)

let prop_ptr_tag_roundtrip =
  QCheck.Test.make ~name:"ptr tag pack/unpack roundtrip" ~count:1000
    QCheck.(pair int64 (int_bound 15))
    (fun (p, t) ->
      Tag.equal (Ptr.tag (Ptr.with_tag p (Tag.of_int t))) (Tag.of_int t))

(* ------------------------------------------------------------------ *)
(* Tag_memory                                                          *)
(* ------------------------------------------------------------------ *)

let test_tagmem_fresh_is_zero () =
  let tm = Tag_memory.create ~size_bytes:256 in
  Alcotest.(check (option tag)) "fresh memory zero-tagged" (Some Tag.zero)
    (Tag_memory.region_tag tm ~addr:0L ~len:256L)

let test_tagmem_set_get () =
  let tm = Tag_memory.create ~size_bytes:256 in
  (match Tag_memory.set_region tm ~addr:32L ~len:64L (Tag.of_int 3) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check tag) "inside region" (Tag.of_int 3) (Tag_memory.get tm 64L);
  Alcotest.(check tag) "before region" Tag.zero (Tag_memory.get tm 16L);
  Alcotest.(check tag) "after region" Tag.zero (Tag_memory.get tm 96L)

let test_tagmem_region_tag_mixed () =
  let tm = Tag_memory.create ~size_bytes:256 in
  ignore (Tag_memory.set_region tm ~addr:0L ~len:16L (Tag.of_int 1));
  Alcotest.(check (option tag)) "mixed region has no single tag" None
    (Tag_memory.region_tag tm ~addr:0L ~len:32L)

let test_tagmem_rejects_unaligned () =
  let tm = Tag_memory.create ~size_bytes:256 in
  (match Tag_memory.set_region tm ~addr:8L ~len:16L (Tag.of_int 1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unaligned set_region accepted");
  match Tag_memory.set_region tm ~addr:16L ~len:8L (Tag.of_int 1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-multiple length accepted"

let test_tagmem_rejects_oob () =
  let tm = Tag_memory.create ~size_bytes:64 in
  match Tag_memory.set_region tm ~addr:48L ~len:32L (Tag.of_int 1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-bounds set_region accepted"

let test_tagmem_matches () =
  let tm = Tag_memory.create ~size_bytes:256 in
  ignore (Tag_memory.set_region tm ~addr:16L ~len:32L (Tag.of_int 5));
  Alcotest.(check bool) "match inside" true
    (Tag_memory.matches tm ~addr:20L ~len:8L (Tag.of_int 5));
  Alcotest.(check bool) "mismatch straddling boundary" false
    (Tag_memory.matches tm ~addr:40L ~len:16L (Tag.of_int 5));
  Alcotest.(check bool) "oob never matches" false
    (Tag_memory.matches tm ~addr:250L ~len:16L Tag.zero)

let test_tagmem_zero_len_checks_granule () =
  let tm = Tag_memory.create ~size_bytes:64 in
  ignore (Tag_memory.set_region tm ~addr:16L ~len:16L (Tag.of_int 2));
  Alcotest.(check bool) "len=0 checks containing granule" true
    (Tag_memory.matches tm ~addr:24L ~len:0L (Tag.of_int 2))

let test_tagmem_grow_preserves () =
  let tm = Tag_memory.create ~size_bytes:64 in
  ignore (Tag_memory.set_region tm ~addr:16L ~len:16L (Tag.of_int 7));
  let tm' = Tag_memory.grow tm ~new_size_bytes:128 in
  Alcotest.(check tag) "old tag preserved" (Tag.of_int 7)
    (Tag_memory.get tm' 16L);
  Alcotest.(check tag) "new space zero" Tag.zero (Tag_memory.get tm' 100L)

let test_tagmem_storage_overhead () =
  (* 4 bits per 16 bytes = 1/32 of memory: the 3.125 % of §7.3 *)
  let tm = Tag_memory.create ~size_bytes:(128 * 1024 * 1024) in
  Alcotest.(check int) "tag storage is 1/32 of memory"
    (128 * 1024 * 1024 / 32)
    (Tag_memory.tag_storage_bytes tm)

let prop_tagmem_set_then_matches =
  QCheck.Test.make ~name:"set_region then matches over same range" ~count:300
    QCheck.(triple (int_bound 15) (int_bound 15) (int_bound 15))
    (fun (g0, glen, t) ->
      let tm = Tag_memory.create ~size_bytes:512 in
      let addr = Int64.of_int (g0 * 16) in
      let len = Int64.of_int ((glen + 1) * 16) in
      if Int64.add addr len > 512L then QCheck.assume_fail ()
      else
        match Tag_memory.set_region tm ~addr ~len (Tag.of_int t) with
        | Ok () -> Tag_memory.matches tm ~addr ~len (Tag.of_int t)
        | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Mte                                                                 *)
(* ------------------------------------------------------------------ *)

let setup_mte ?(mode = Mte.Sync) () =
  let tm = Tag_memory.create ~size_bytes:256 in
  ignore (Tag_memory.set_region tm ~addr:64L ~len:32L (Tag.of_int 4));
  (tm, Mte.create ~mode tm)

let test_mte_allows_matching () =
  let _, mte = setup_mte () in
  let p = Ptr.with_tag 64L (Tag.of_int 4) in
  match Mte.check mte Load ~ptr:p ~len:8L with
  | Allowed -> ()
  | _ -> Alcotest.fail "matching access faulted"

let test_mte_sync_faults_mismatch () =
  let _, mte = setup_mte () in
  let p = Ptr.with_tag 64L (Tag.of_int 5) in
  match Mte.check mte Store ~ptr:p ~len:8L with
  | Faulted f ->
      Alcotest.(check tag) "pointer tag recorded" (Tag.of_int 5) f.ptr_tag;
      Alcotest.(check (option tag)) "memory tag recorded" (Some (Tag.of_int 4))
        f.mem_tag
  | _ -> Alcotest.fail "sync mismatch did not fault"

let test_mte_disabled_allows_everything () =
  let _, mte = setup_mte ~mode:Mte.Disabled () in
  let p = Ptr.with_tag 64L (Tag.of_int 9) in
  match Mte.check mte Store ~ptr:p ~len:8L with
  | Allowed -> ()
  | _ -> Alcotest.fail "disabled MTE checked tags"

let test_mte_async_defers () =
  let _, mte = setup_mte ~mode:Mte.Async () in
  let p = Ptr.with_tag 64L (Tag.of_int 9) in
  (match Mte.check mte Store ~ptr:p ~len:8L with
  | Deferred _ -> ()
  | _ -> Alcotest.fail "async mismatch not deferred");
  Alcotest.(check bool) "TFSR set" true (Mte.pending_fault mte <> None);
  (match Mte.context_switch mte with
  | Some _ -> ()
  | None -> Alcotest.fail "context switch lost the fault");
  Alcotest.(check bool) "TFSR cleared" true (Mte.pending_fault mte = None)

let test_mte_asymmetric () =
  let _, mte = setup_mte ~mode:Mte.Asymmetric () in
  let p = Ptr.with_tag 64L (Tag.of_int 9) in
  (match Mte.check mte Load ~ptr:p ~len:8L with
  | Deferred _ -> ()
  | _ -> Alcotest.fail "asymmetric load should be async");
  match Mte.check mte Store ~ptr:p ~len:8L with
  | Faulted _ -> ()
  | _ -> Alcotest.fail "asymmetric store should be sync"

let test_mte_async_keeps_first_fault () =
  let _, mte = setup_mte ~mode:Mte.Async () in
  let p1 = Ptr.with_tag 64L (Tag.of_int 9) in
  let p2 = Ptr.with_tag 80L (Tag.of_int 10) in
  ignore (Mte.check mte Store ~ptr:p1 ~len:8L);
  ignore (Mte.check mte Store ~ptr:p2 ~len:8L);
  match Mte.pending_fault mte with
  | Some f -> Alcotest.(check int64) "first fault kept" 64L f.fault_addr
  | None -> Alcotest.fail "no pending fault"

let test_mte_take_pending_drains () =
  let _, mte = setup_mte ~mode:Mte.Async () in
  let p = Ptr.with_tag 64L (Tag.of_int 9) in
  ignore (Mte.check mte Store ~ptr:p ~len:8L);
  (match Mte.take_pending mte with
  | Some f -> Alcotest.(check int64) "fault returned" 64L f.fault_addr
  | None -> Alcotest.fail "take_pending lost the fault");
  Alcotest.(check bool) "second drain is empty" true
    (Mte.take_pending mte = None)

let test_tag_memory_grow_preserves_and_reuses () =
  let tm = Tag_memory.create ~size_bytes:128 in
  ignore (Tag_memory.set_region tm ~addr:32L ~len:16L (Tag.of_int 7));
  (* same granule count: nothing to do, tags untouched *)
  let tm = Tag_memory.grow tm ~new_size_bytes:128 in
  Alcotest.(check tag) "tag kept after no-op grow" (Tag.of_int 7)
    (Tag_memory.get tm 32L);
  (* real grow: old tags preserved, new granules zero-tagged *)
  let tm = Tag_memory.grow tm ~new_size_bytes:256 in
  Alcotest.(check int) "size grown" 256 (Tag_memory.size_bytes tm);
  Alcotest.(check tag) "tag kept after grow" (Tag.of_int 7)
    (Tag_memory.get tm 32L);
  Alcotest.(check tag) "fresh granules zero-tagged" Tag.zero
    (Tag_memory.get tm 200L)

let test_mte_oob_is_mismatch () =
  let _, mte = setup_mte () in
  let p = Ptr.with_tag 1024L Tag.zero in
  match Mte.check mte Load ~ptr:p ~len:8L with
  | Faulted f -> Alcotest.(check (option tag)) "no memory tag" None f.mem_tag
  | _ -> Alcotest.fail "out-of-range access allowed"

(* ------------------------------------------------------------------ *)
(* Pac                                                                 *)
(* ------------------------------------------------------------------ *)

let key_a = Pac.key_of_int64s 0x0123456789abcdefL 0xfedcba9876543210L
let key_b = Pac.key_of_int64s 0x1111111111111111L 0x2222222222222222L

let test_pac_sign_auth_roundtrip () =
  let cfg = Pac.default_config in
  let p = 0x0000_0000_1234_5678L in
  let signed = Pac.sign cfg key_a ~modifier:0L p in
  match Pac.auth cfg key_a ~modifier:0L signed with
  | Valid p' -> Alcotest.(check int64) "roundtrip" p p'
  | _ -> Alcotest.fail "valid signature rejected"

let test_pac_wrong_key_traps () =
  let cfg = Pac.default_config in
  let signed = Pac.sign cfg key_a ~modifier:0L 0x1234L in
  match Pac.auth cfg key_b ~modifier:0L signed with
  | Invalid_trap -> ()
  | Valid _ -> Alcotest.fail "wrong key accepted"
  | Invalid_poisoned _ -> Alcotest.fail "FPAC config should trap"

let test_pac_wrong_modifier_traps () =
  let cfg = Pac.default_config in
  let signed = Pac.sign cfg key_a ~modifier:7L 0x1234L in
  match Pac.auth cfg key_a ~modifier:8L signed with
  | Invalid_trap -> ()
  | _ -> Alcotest.fail "wrong modifier accepted"

let test_pac_no_fpac_poisons () =
  let cfg = { Pac.default_config with fpac = false } in
  let signed = Pac.sign cfg key_a ~modifier:0L 0x1234L in
  match Pac.auth cfg key_b ~modifier:0L signed with
  | Invalid_poisoned p ->
      Alcotest.(check bool) "poison marker set" true (Pac.is_poisoned cfg p);
      Alcotest.(check int64) "address survives" 0x1234L (Ptr.address p)
  | Invalid_trap -> Alcotest.fail "non-FPAC config trapped"
  | Valid _ -> Alcotest.fail "wrong key accepted"

let test_pac_strip () =
  let cfg = Pac.default_config in
  let signed = Pac.sign cfg key_a ~modifier:0L 0x1234L in
  Alcotest.(check int64) "xpacd strips without auth" 0x1234L
    (Pac.strip cfg signed)

let test_pac_tampered_address_traps () =
  let cfg = Pac.default_config in
  let signed = Pac.sign cfg key_a ~modifier:0L 0x1234L in
  let tampered = Ptr.offset signed 16L in
  match Pac.auth cfg key_a ~modifier:0L tampered with
  | Invalid_trap -> ()
  | _ -> Alcotest.fail "tampered pointer accepted"

let test_pac_preserves_mte_tag () =
  let cfg = Pac.default_config in
  let p = Ptr.with_tag 0x1234L (Tag.of_int 6) in
  let signed = Pac.sign cfg key_a ~modifier:0L p in
  Alcotest.(check tag) "tag outside PAC field" (Tag.of_int 6) (Ptr.tag signed);
  match Pac.auth cfg key_a ~modifier:0L signed with
  | Valid p' -> Alcotest.(check tag) "tag after auth" (Tag.of_int 6) (Ptr.tag p')
  | _ -> Alcotest.fail "valid signature rejected"

let prop_pac_roundtrip =
  QCheck.Test.make ~name:"pac sign/auth roundtrip for any pointer" ~count:500
    QCheck.(pair int64 int64)
    (fun (p0, modifier) ->
      let cfg = Pac.default_config in
      (* canonical userspace pointer: metadata cleared *)
      let p = Ptr.address p0 in
      match Pac.auth cfg key_a ~modifier (Pac.sign cfg key_a ~modifier p) with
      | Valid p' -> Int64.equal p p'
      | _ -> false)

let prop_pac_cross_key_rejected =
  QCheck.Test.make ~name:"cross-key auth almost surely rejected" ~count:300
    QCheck.int64
    (fun p0 ->
      let cfg = Pac.default_config in
      let p = Ptr.address p0 in
      let signed = Pac.sign cfg key_a ~modifier:0L p in
      (* 10-bit signature: chance collision 1/1024; accept deterministic
         collisions, reject only wrong behaviour *)
      match Pac.auth cfg key_b ~modifier:0L signed with
      | Invalid_trap -> true
      | Valid _ -> (
          match Pac.auth cfg key_b ~modifier:0L signed with
          | Valid _ -> true
          | _ -> false)
      | Invalid_poisoned _ -> false)

let test_pac_mac_avalanche () =
  (* flipping one input bit flips many output bits on average *)
  let total = ref 0 in
  let n = 256 in
  for i = 0 to n - 1 do
    let v = Int64.of_int (i * 977) in
    let h0 = Pac.mac key_a ~modifier:0L v in
    let h1 = Pac.mac key_a ~modifier:0L (Int64.logxor v 1L) in
    let diff = Int64.logxor h0 h1 in
    let rec popcount x acc =
      if Int64.equal x 0L then acc
      else
        popcount
          (Int64.shift_right_logical x 1)
          (acc + Int64.to_int (Int64.logand x 1L))
    in
    total := !total + popcount diff 0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "avalanche mean %.1f in [24, 40]" mean)
    true
    (mean > 24.0 && mean < 40.0)

(* ------------------------------------------------------------------ *)
(* Timing: Table 1 recovery                                            *)
(* ------------------------------------------------------------------ *)

let close ~tol a b = Float.abs (a -. b) /. Float.max a b < tol

let test_timing_recovers_table1_throughput () =
  List.iter
    (fun cpu ->
      List.iter
        (fun kind ->
          let expect = (cpu.Cpu_model.perf kind).tp in
          let expect = Float.min expect cpu.issue_width in
          let got = Timing.measured_throughput cpu kind in
          if not (close ~tol:0.05 expect got) then
            Alcotest.failf "%s %s: throughput %.2f, expected %.2f"
              cpu.Cpu_model.name (Insn.kind_to_string kind) got expect)
        Insn.table1_kinds)
    Cpu_model.tensor_g3

let test_timing_recovers_table1_latency () =
  List.iter
    (fun cpu ->
      List.iter
        (fun kind ->
          if Insn.has_latency kind then begin
            let expect = (cpu.Cpu_model.perf kind).lat in
            let got = Timing.measured_latency cpu kind in
            if not (close ~tol:0.05 expect got) then
              Alcotest.failf "%s %s: latency %.2f, expected %.2f"
                cpu.Cpu_model.name (Insn.kind_to_string kind) got expect
          end)
        Insn.table1_kinds)
    Cpu_model.tensor_g3

let test_timing_inorder_serialises () =
  (* On the in-order core a long-latency op blocks younger independent
     work; on the out-of-order cores it does not. *)
  let stream =
    [ Insn.make ~dst:0 Insn.Irg; Insn.make ~dst:1 ~srcs:[ 0 ] Insn.Autda ]
    @ Insn.independent Insn.Alu 64
  in
  let ooo = (Timing.run Cpu_model.cortex_x3 stream).cycles in
  let ino = (Timing.run Cpu_model.cortex_a510 stream).cycles in
  Alcotest.(check bool) "in-order slower than out-of-order" true (ino > ooo)

let test_timing_mte_sync_memset_overhead () =
  (* Fig. 4 shape: sync costs more than async costs more than disabled. *)
  List.iter
    (fun cpu ->
      let t mode =
        Timing.memset_seconds cpu ~mode ~bytes:(128.0 *. 1024.0 *. 1024.0)
      in
      let off = t Mte.Disabled and sync = t Mte.Sync and async = t Mte.Async in
      Alcotest.(check bool)
        (cpu.Cpu_model.name ^ ": sync > async")
        true (sync > async);
      Alcotest.(check bool)
        (cpu.Cpu_model.name ^ ": async > disabled")
        true (async > off);
      let sync_ovh = (sync -. off) /. off in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sync overhead %.1f%% within Fig.4 range"
           cpu.Cpu_model.name (100.0 *. sync_ovh))
        true
        (sync_ovh > 0.10 && sync_ovh < 0.35))
    Cpu_model.tensor_g3

let test_timing_memset_faster_on_faster_core () =
  let bytes = 128.0 *. 1024.0 *. 1024.0 in
  let x3 = Timing.memset_seconds Cpu_model.cortex_x3 ~mode:Mte.Disabled ~bytes in
  let a510 =
    Timing.memset_seconds Cpu_model.cortex_a510 ~mode:Mte.Disabled ~bytes
  in
  Alcotest.(check bool) "X3 beats A510" true (x3 < a510)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_irg_uniform_over_allowed; prop_next_allowed_never_excluded;
      prop_pac_field_roundtrip; prop_ptr_tag_roundtrip;
      prop_tagmem_set_then_matches; prop_pac_roundtrip;
      prop_pac_cross_key_rejected;
    ]

let () =
  Alcotest.run "arch"
    [
      ( "tag",
        [
          Alcotest.test_case "of_int wraps" `Quick test_tag_of_int_wraps;
          Alcotest.test_case "of_int_exn rejects" `Quick
            test_tag_of_int_exn_rejects;
          Alcotest.test_case "add wraps" `Quick test_tag_add_wraps;
          Alcotest.test_case "exclude basics" `Quick test_exclude_basics;
          Alcotest.test_case "exclude mask roundtrip" `Quick
            test_exclude_mask_roundtrip;
          Alcotest.test_case "next_allowed skips" `Quick
            test_next_allowed_skips_excluded;
          Alcotest.test_case "next_allowed all excluded" `Quick
            test_next_allowed_all_excluded;
          Alcotest.test_case "irg respects exclusion" `Quick
            test_irg_respects_exclusion;
          Alcotest.test_case "irg all excluded" `Quick
            test_irg_all_excluded_is_zero;
        ] );
      ( "ptr",
        [
          Alcotest.test_case "tag roundtrip" `Quick test_ptr_tag_roundtrip;
          Alcotest.test_case "offset preserves tag" `Quick
            test_ptr_offset_preserves_tag;
          Alcotest.test_case "offset wraps 48 bits" `Quick
            test_ptr_offset_wraps_48_bits;
          Alcotest.test_case "mask external" `Quick test_ptr_mask_external;
          Alcotest.test_case "mask combined" `Quick test_ptr_mask_combined;
          Alcotest.test_case "pac field widths" `Quick test_pac_field_widths;
          Alcotest.test_case "pac field keeps tag" `Quick
            test_pac_field_mte_keeps_tag;
        ] );
      ( "tag_memory",
        [
          Alcotest.test_case "fresh is zero" `Quick test_tagmem_fresh_is_zero;
          Alcotest.test_case "set/get" `Quick test_tagmem_set_get;
          Alcotest.test_case "mixed region" `Quick test_tagmem_region_tag_mixed;
          Alcotest.test_case "rejects unaligned" `Quick
            test_tagmem_rejects_unaligned;
          Alcotest.test_case "rejects oob" `Quick test_tagmem_rejects_oob;
          Alcotest.test_case "matches" `Quick test_tagmem_matches;
          Alcotest.test_case "zero-len granule" `Quick
            test_tagmem_zero_len_checks_granule;
          Alcotest.test_case "grow preserves" `Quick test_tagmem_grow_preserves;
          Alcotest.test_case "storage overhead 1/32" `Quick
            test_tagmem_storage_overhead;
        ] );
      ( "mte",
        [
          Alcotest.test_case "allows matching" `Quick test_mte_allows_matching;
          Alcotest.test_case "sync faults" `Quick test_mte_sync_faults_mismatch;
          Alcotest.test_case "disabled allows" `Quick
            test_mte_disabled_allows_everything;
          Alcotest.test_case "async defers" `Quick test_mte_async_defers;
          Alcotest.test_case "asymmetric" `Quick test_mte_asymmetric;
          Alcotest.test_case "async keeps first" `Quick
            test_mte_async_keeps_first_fault;
          Alcotest.test_case "oob is mismatch" `Quick test_mte_oob_is_mismatch;
          Alcotest.test_case "take_pending drains sticky TFSR" `Quick
            test_mte_take_pending_drains;
          Alcotest.test_case "tag grow preserves and reuses" `Quick
            test_tag_memory_grow_preserves_and_reuses;
        ] );
      ( "pac",
        [
          Alcotest.test_case "sign/auth roundtrip" `Quick
            test_pac_sign_auth_roundtrip;
          Alcotest.test_case "wrong key traps" `Quick test_pac_wrong_key_traps;
          Alcotest.test_case "wrong modifier traps" `Quick
            test_pac_wrong_modifier_traps;
          Alcotest.test_case "no-FPAC poisons" `Quick test_pac_no_fpac_poisons;
          Alcotest.test_case "strip" `Quick test_pac_strip;
          Alcotest.test_case "tampered address traps" `Quick
            test_pac_tampered_address_traps;
          Alcotest.test_case "preserves MTE tag" `Quick
            test_pac_preserves_mte_tag;
          Alcotest.test_case "mac avalanche" `Quick test_pac_mac_avalanche;
        ] );
      ( "timing",
        [
          Alcotest.test_case "recovers Table 1 throughput" `Quick
            test_timing_recovers_table1_throughput;
          Alcotest.test_case "recovers Table 1 latency" `Quick
            test_timing_recovers_table1_latency;
          Alcotest.test_case "in-order serialises" `Quick
            test_timing_inorder_serialises;
          Alcotest.test_case "Fig.4 memset overheads" `Quick
            test_timing_mte_sync_memset_overhead;
          Alcotest.test_case "memset core ordering" `Quick
            test_timing_memset_faster_on_faster_core;
        ] );
      ("arch-properties", qtests);
    ]
