(* Tests for the chaos-injection substrate (Arch.Fault_inject), the
   crash-containment supervisor (Cage.Supervisor) with its MTE-style
   post-mortems, the partial-write semantics of the checked bulk
   operations under fault, and the detection matrix. *)

open Wasm

let value = Alcotest.testable Values.pp Values.equal

(* ------------------------------------------------------------------ *)
(* Builders (same shapes as test_wasm)                                  *)
(* ------------------------------------------------------------------ *)

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let module_of funcs =
  let types = List.map (fun (ty, _, _) -> ty) funcs in
  {
    Ast.empty_module with
    types;
    funcs =
      List.mapi
        (fun i (_, locals, body) ->
          { Ast.ftype = i; locals; body; fname = Some (Printf.sprintf "f%d" i) })
        funcs;
    memory = Some mem64;
    exports =
      List.mapi
        (fun i _ ->
          { Ast.ex_name = Printf.sprintf "f%d" i; ex_desc = Ast.Func_export i })
        funcs;
  }

let supervised ?fuel cfg m =
  let proc = Cage.Process.create ~config:cfg ~seed:11 () in
  let sup = Cage.Supervisor.create ?fuel proc in
  let inst = Cage.Supervisor.spawn sup m in
  (sup, inst)

let crash_of = function
  | Cage.Supervisor.Crashed pm -> pm
  | Cage.Supervisor.Finished _ -> Alcotest.fail "expected a crash"

let mem_byte (inst : Instance.t) addr =
  Memory.load_byte (Option.get inst.Instance.mem) (Int64.of_int addr)

(* ------------------------------------------------------------------ *)
(* Fault_inject engine                                                  *)
(* ------------------------------------------------------------------ *)

(* Replay a fixed draw schedule against an engine and record what
   fired. Two engines from the same policy must agree exactly. *)
let draw_trace pol sched =
  let e = Arch.Fault_inject.create pol in
  Arch.Fault_inject.with_engine e (fun () ->
      List.map
        (fun site ->
          let fired = Arch.Fault_inject.draw site in
          (fired, if fired then Arch.Fault_inject.rand_int 1000 else -1))
        sched)

let test_engine_deterministic () =
  let pol =
    Arch.Fault_inject.policy ~seed:42 ~probability:0.5 ~max_injections:10
      [ Arch.Fault_inject.Tag_flip; Arch.Fault_inject.Ptr_tag ]
  in
  let sched =
    List.concat
      (List.init 20 (fun _ ->
           [ Arch.Fault_inject.Tag_flip; Arch.Fault_inject.Ptr_tag;
             Arch.Fault_inject.Pac_forge ]))
  in
  Alcotest.(check bool) "same policy replays the same fault sequence" true
    (draw_trace pol sched = draw_trace pol sched)

let test_engine_budget_and_filter () =
  let pol =
    Arch.Fault_inject.policy ~seed:1 ~max_injections:2
      [ Arch.Fault_inject.Tag_flip ]
  in
  let e = Arch.Fault_inject.create pol in
  Arch.Fault_inject.with_engine e (fun () ->
      Alcotest.(check bool) "unarmed site never fires" false
        (Arch.Fault_inject.draw Arch.Fault_inject.Pac_forge);
      Alcotest.(check bool) "first draw fires" true
        (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip);
      Alcotest.(check bool) "second draw fires" true
        (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip);
      Alcotest.(check bool) "budget exhausted" false
        (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip));
  Alcotest.(check int) "two injections recorded" 2 (Arch.Fault_inject.count e);
  Alcotest.(check bool) "no engine installed: fast path never fires" false
    (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip)

let test_engine_site_max () =
  let pol =
    Arch.Fault_inject.policy ~seed:1 ~max_injections:100
      ~site_max:[ (Arch.Fault_inject.Tag_flip, 1) ]
      [ Arch.Fault_inject.Tag_flip; Arch.Fault_inject.Tfsr_drop ]
  in
  let e = Arch.Fault_inject.create pol in
  Arch.Fault_inject.with_engine e (fun () ->
      Alcotest.(check bool) "capped site fires once" true
        (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip);
      Alcotest.(check bool) "capped site is then exhausted" false
        (Arch.Fault_inject.draw Arch.Fault_inject.Tag_flip);
      Alcotest.(check bool) "uncapped site still fires" true
        (Arch.Fault_inject.draw Arch.Fault_inject.Tfsr_drop))

(* ------------------------------------------------------------------ *)
(* Trap-message classification                                          *)
(* ------------------------------------------------------------------ *)

let test_classify_taxonomy () =
  let check msg cls =
    Alcotest.(check string) msg
      (Cage.Supervisor.fault_class_to_string cls)
      (Cage.Supervisor.fault_class_to_string (Cage.Supervisor.classify msg))
  in
  check "tag fault: store of 8 byte(s)" Cage.Supervisor.Tag_fault;
  check "deferred: tag fault: load" Cage.Supervisor.Deferred_tag_fault;
  check "pac auth: invalid signature" Cage.Supervisor.Pac_auth;
  check "bounds: out of bounds memory access" Cage.Supervisor.Bounds;
  check "bounds: non-canonical address 0x2000000000000" Cage.Supervisor.Bounds;
  check "fuel: execution budget exhausted" Cage.Supervisor.Fuel;
  check "stack: call stack exhausted (depth 1025)" Cage.Supervisor.Stack;
  check "unreachable executed" Cage.Supervisor.Unreachable;
  check "integer divide by zero" Cage.Supervisor.Guest_trap

(* ------------------------------------------------------------------ *)
(* Satellite 1: a latched deferred fault survives a synchronous trap    *)
(* ------------------------------------------------------------------ *)

let memarg offset = { Ast.offset; align = 0 }

(* Allocate + free a segment, store through the stale pointer (Async:
   latches in the TFSR), then trap out-of-bounds. The latched fault
   must surface in the post-mortem, not silently vanish with the
   unwound interpreter. *)
let test_pending_fault_survives_sync_trap () =
  let m =
    module_of
      [ (ft [] [], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
           Ast.LocalGet 0; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg 0L);
           Ast.I64Const 100000L; Ast.Load (Types.I64, None, memarg 0L);
           Ast.Drop ]) ]
  in
  let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = Arch.Mte.Async } in
  let sup, inst = supervised cfg m in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "the synchronous trap is the bounds violation"
    "bounds violation"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  (match pm.Cage.Supervisor.pm_pending with
  | Some f ->
      Alcotest.(check bool) "drained TFSR holds the store fault" true
        (f.Arch.Mte.fault_access = Arch.Mte.Store);
      Alcotest.(check int64) "at the freed segment" 1024L f.Arch.Mte.fault_addr
  | None ->
      Alcotest.fail
        "deferred fault latched before the trap was lost by the unwind");
  (* the TFSR was drained INTO the post-mortem: nothing may leak into
     the next invocation's report *)
  (match inst.Instance.mte with
  | Some mte ->
      Alcotest.(check bool) "TFSR empty after the post-mortem" true
        (Arch.Mte.pending_fault mte = None)
  | None -> Alcotest.fail "mem_safety instance has an MTE engine");
  Alcotest.(check (list string)) "backtrace froze the faulting frame"
    [ "f0" ] pm.Cage.Supervisor.pm_backtrace

let test_deferred_report_post_mortem () =
  (* same scenario without the bounds trap: the deferred fault is
     reported at function return and becomes the structured fault *)
  let m =
    module_of
      [ (ft [] [], [ Types.I64 ],
         [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
           Ast.LocalGet 0; Ast.I64Const 1L;
           Ast.Store (Types.I64, None, memarg 0L) ]) ]
  in
  let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = Arch.Mte.Async } in
  let sup, inst = supervised cfg m in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "classified as a deferred tag fault"
    "deferred tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  match pm.Cage.Supervisor.pm_fault with
  | Some f ->
      Alcotest.(check bool) "structured fault is the store" true
        (f.Arch.Mte.fault_access = Arch.Mte.Store)
  | None -> Alcotest.fail "post-mortem lacks the structured fault"

(* ------------------------------------------------------------------ *)
(* Satellite 3: PAC authentication failures under FEAT_FPAC             *)
(* ------------------------------------------------------------------ *)

let sign_auth_module =
  module_of
    [ (ft [ Types.I64 ] [ Types.I64 ], [],
       [ Ast.LocalGet 0; Ast.PointerSign ]);
      (ft [ Types.I64 ] [ Types.I64 ], [],
       [ Ast.LocalGet 0; Ast.PointerAuth ]) ]

let test_pac_cross_instance_pointer () =
  (* §6.3: one process key, per-instance modifiers — a pointer signed
     in instance A must not authenticate in instance B *)
  let proc = Cage.Process.create ~config:Cage.Config.ptr_auth ~seed:5 () in
  let sup = Cage.Supervisor.create proc in
  let a = Cage.Supervisor.spawn sup sign_auth_module in
  let b = Cage.Supervisor.spawn sup sign_auth_module in
  let signed =
    match Cage.Supervisor.run sup a "f0" [ Values.I64 1234L ] with
    | Cage.Supervisor.Finished [ v ] -> v
    | _ -> Alcotest.fail "signing crashed"
  in
  (match Cage.Supervisor.run sup a "f1" [ signed ] with
  | Cage.Supervisor.Finished vs ->
      Alcotest.(check (list value)) "same instance authenticates"
        [ Values.I64 1234L ] vs
  | Cage.Supervisor.Crashed _ -> Alcotest.fail "same-instance auth crashed");
  let pm = crash_of (Cage.Supervisor.run sup b "f1" [ signed ]) in
  Alcotest.(check string) "cross-instance auth is a PAC failure"
    "pac auth failure"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check bool) "message carries the pac auth prefix" true
    (Astring.String.is_prefix ~affix:"pac auth:" pm.Cage.Supervisor.pm_message);
  Alcotest.(check bool) "faulting instance is quarantined" true
    (Cage.Supervisor.is_quarantined sup b);
  Alcotest.(check bool) "signer is not" false
    (Cage.Supervisor.is_quarantined sup a)

let pac_engine_crash site =
  let m =
    module_of
      [ (ft [ Types.I64 ] [ Types.I64 ], [],
         [ Ast.LocalGet 0; Ast.PointerSign; Ast.PointerAuth ]) ]
  in
  let sup, inst = supervised Cage.Config.ptr_auth m in
  let engine =
    Arch.Fault_inject.create (Arch.Fault_inject.policy ~seed:9 [ site ])
  in
  let outcome =
    Arch.Fault_inject.with_engine engine (fun () ->
        Cage.Supervisor.run sup inst "f0" [ Values.I64 99L ])
  in
  Alcotest.(check int) "the chaos engine fired" 1
    (Arch.Fault_inject.count engine);
  outcome

let test_pac_forged_signature () =
  let pm = crash_of (pac_engine_crash Arch.Fault_inject.Pac_forge) in
  Alcotest.(check string) "a flipped signature bit fails autda"
    "pac auth failure"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check bool) "post-mortem lists the injection" true
    (List.exists
       (fun s -> Astring.String.is_infix ~affix:"pac-forge" s)
       pm.Cage.Supervisor.pm_injections)

let test_pac_stripped_signature () =
  let pm = crash_of (pac_engine_crash Arch.Fault_inject.Pac_strip) in
  Alcotest.(check string) "a stripped (xpacd) signature fails autda"
    "pac auth failure"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class)

(* ------------------------------------------------------------------ *)
(* Satellite 4: partial-write semantics of bulk ops under fault         *)
(* ------------------------------------------------------------------ *)

(* A 32-byte tagged segment at 1024 inside a 64-byte fill span: the
   granule at 1056 has a different (untagged) tag, so the store span
   mismatches 32 bytes in. *)
let fill_overrun_module =
  module_of
    [ (ft [] [], [ Types.I64 ],
       [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
         Ast.LocalSet 0;
         Ast.LocalGet 0; Ast.I32Const 0xabl; Ast.I64Const 64L;
         Ast.MemoryFill ]) ]

let count_bytes inst v ~from ~len =
  let n = ref 0 in
  for a = from to from + len - 1 do
    if mem_byte inst a = v then incr n
  done;
  !n

let test_fill_partial_write_sync () =
  let cfg = Cage.Config.mem_safety in
  let sup, inst = supervised cfg fill_overrun_module in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "synchronous tag fault" "tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check int) "exactly the bytes before the faulting granule land"
    32
    (count_bytes inst 0xab ~from:1024 ~len:64);
  Alcotest.(check int) "nothing past the mismatch" 0
    (count_bytes inst 0xab ~from:1056 ~len:32)

let test_fill_partial_write_async () =
  let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = Arch.Mte.Async } in
  let sup, inst = supervised cfg fill_overrun_module in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "reported late, at the sync point"
    "deferred tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check int) "every byte of the span landed" 64
    (count_bytes inst 0xab ~from:1024 ~len:64)

(* Copy with a mid-span destination fault: 64 bytes of 0x55 at 2048
   (untagged source) into the tagged-then-untagged span at the segment
   pointer. *)
let copy_overrun_module =
  module_of
    [ (ft [] [], [ Types.I64 ],
       [ Ast.I64Const 2048L; Ast.I32Const 0x55l; Ast.I64Const 64L;
         Ast.MemoryFill;
         Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
         Ast.LocalSet 0;
         Ast.LocalGet 0; Ast.I64Const 2048L; Ast.I64Const 64L;
         Ast.MemoryCopy ]) ]

let test_copy_partial_write_sync () =
  let sup, inst = supervised Cage.Config.mem_safety copy_overrun_module in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "synchronous tag fault on the store side"
    "tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check int) "prefix before the mismatching granule copied" 32
    (count_bytes inst 0x55 ~from:1024 ~len:64);
  Alcotest.(check int) "tail untouched" 0
    (count_bytes inst 0x55 ~from:1056 ~len:32)

let test_copy_partial_write_async () =
  let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = Arch.Mte.Async } in
  let sup, inst = supervised cfg copy_overrun_module in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "deferred report" "deferred tag fault"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check int) "all 64 bytes copied" 64
    (count_bytes inst 0x55 ~from:1024 ~len:64)

let test_copy_faulting_source_writes_nothing () =
  (* the whole source span mismatches (freed segment): the load fault
     is at offset 0 and not a single destination byte may change *)
  let m =
    module_of
      [ (ft [] [], [ Types.I64 ],
         [ Ast.I64Const 2048L; Ast.I32Const 0x77l; Ast.I64Const 32L;
           Ast.MemoryFill;
           Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
           Ast.LocalSet 0;
           Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
           Ast.I64Const 2048L; Ast.LocalGet 0; Ast.I64Const 32L;
           Ast.MemoryCopy ]) ]
  in
  let sup, inst = supervised Cage.Config.mem_safety m in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  (match pm.Cage.Supervisor.pm_fault with
  | Some f ->
      Alcotest.(check bool) "the load side is reported" true
        (f.Arch.Mte.fault_access = Arch.Mte.Load)
  | None -> Alcotest.fail "no structured fault");
  Alcotest.(check int) "destination bytes untouched" 32
    (count_bytes inst 0x77 ~from:2048 ~len:32)

(* ------------------------------------------------------------------ *)
(* Supervisor: watchdog, quarantine, host errors                        *)
(* ------------------------------------------------------------------ *)

let spin_module =
  module_of
    [ (ft [] [], [],
       [ Ast.Loop (Ast.ValBlock None, [ Ast.Br 0 ]) ]);
      (ft [] [ Types.I32 ], [], [ Ast.I32Const 41l ]) ]

let test_fuel_watchdog () =
  let sup, inst = supervised ~fuel:10_000 Cage.Config.baseline_wasm64 spin_module in
  let pm = crash_of (Cage.Supervisor.run sup inst "f0" []) in
  Alcotest.(check string) "runaway loop is cut off" "out of fuel"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check int) "budget fully burned" 0 pm.Cage.Supervisor.pm_fuel_left

let test_quarantine_and_sibling () =
  let proc = Cage.Process.create ~config:Cage.Config.baseline_wasm64 ~seed:3 () in
  let sup = Cage.Supervisor.create ~fuel:10_000 proc in
  let victim = Cage.Supervisor.spawn sup spin_module in
  let sibling = Cage.Supervisor.spawn sup spin_module in
  ignore (crash_of (Cage.Supervisor.run sup victim "f0" []));
  (* re-running the quarantined instance is refused, not executed *)
  let pm = crash_of (Cage.Supervisor.run sup victim "f1" []) in
  Alcotest.(check string) "quarantined instance is refused" "quarantined"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  (* the sibling in the same process still executes *)
  (match Cage.Supervisor.run sup sibling "f1" [] with
  | Cage.Supervisor.Finished vs ->
      Alcotest.(check (list value)) "sibling unaffected" [ Values.I32 41l ] vs
  | Cage.Supervisor.Crashed _ -> Alcotest.fail "sibling was poisoned");
  Alcotest.(check int) "one instance quarantined" 1
    (List.length (Cage.Supervisor.quarantined sup))

let test_host_error_contained () =
  let sup, inst = supervised Cage.Config.baseline_wasm64 spin_module in
  let pm =
    crash_of
      (Cage.Supervisor.run_thunk sup inst (fun () -> failwith "host blew up"))
  in
  Alcotest.(check string) "an OCaml exception becomes a contained crash"
    "host error"
    (Cage.Supervisor.fault_class_to_string pm.Cage.Supervisor.pm_class);
  Alcotest.(check bool) "message preserved" true
    (Astring.String.is_infix ~affix:"host blew up"
       pm.Cage.Supervisor.pm_message)

(* ------------------------------------------------------------------ *)
(* Detection matrix + chaos fuzz                                        *)
(* ------------------------------------------------------------------ *)

let render_to_string results =
  Format.asprintf "%a" (fun ppf -> Harness.Detection_matrix.render ppf) results

let test_matrix_deterministic () =
  let a = render_to_string (Harness.Detection_matrix.run ~seed:3 ()) in
  let b = render_to_string (Harness.Detection_matrix.run ~seed:3 ()) in
  Alcotest.(check string) "same seed renders the same matrix" a b

let test_matrix_gate () =
  let results = Harness.Detection_matrix.run ~seed:7 () in
  Alcotest.(check (list string)) "no full+sync escapes, no poisoned siblings"
    []
    (Harness.Detection_matrix.violations results);
  (* every armed fault class is exercised somewhere in the matrix *)
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Arch.Fault_inject.site_to_string site ^ " triggered somewhere") true
        (List.exists
           (fun r ->
             r.Harness.Detection_matrix.r_site = site
             && r.Harness.Detection_matrix.r_injections > 0)
           results))
    Arch.Fault_inject.all_sites

let test_chaos_fuzz_invariant () =
  let stats = Harness.Detection_matrix.chaos_fuzz ~seed:2026 ~count:40 () in
  Alcotest.(check (list string)) "no supervisor-invariant violations" []
    stats.Harness.Detection_matrix.fz_failures;
  Alcotest.(check bool) "chaos actually fired in some runs" true
    (stats.Harness.Detection_matrix.fz_injected > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "supervisor"
    [
      ( "fault-inject",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_engine_deterministic;
          Alcotest.test_case "budget and site filter" `Quick
            test_engine_budget_and_filter;
          Alcotest.test_case "per-site caps" `Quick test_engine_site_max;
        ] );
      ( "classify",
        [ Alcotest.test_case "prefix taxonomy" `Quick test_classify_taxonomy ]
      );
      ( "post-mortem",
        [
          Alcotest.test_case "pending fault survives sync trap" `Quick
            test_pending_fault_survives_sync_trap;
          Alcotest.test_case "deferred report post-mortem" `Quick
            test_deferred_report_post_mortem;
        ] );
      ( "pac",
        [
          Alcotest.test_case "cross-instance pointer" `Quick
            test_pac_cross_instance_pointer;
          Alcotest.test_case "forged signature" `Quick
            test_pac_forged_signature;
          Alcotest.test_case "stripped signature" `Quick
            test_pac_stripped_signature;
        ] );
      ( "partial-write",
        [
          Alcotest.test_case "fill sync stops at mismatch" `Quick
            test_fill_partial_write_sync;
          Alcotest.test_case "fill async lands everything" `Quick
            test_fill_partial_write_async;
          Alcotest.test_case "copy sync stops at mismatch" `Quick
            test_copy_partial_write_sync;
          Alcotest.test_case "copy async lands everything" `Quick
            test_copy_partial_write_async;
          Alcotest.test_case "faulting source writes nothing" `Quick
            test_copy_faulting_source_writes_nothing;
        ] );
      ( "containment",
        [
          Alcotest.test_case "fuel watchdog" `Quick test_fuel_watchdog;
          Alcotest.test_case "quarantine and sibling" `Quick
            test_quarantine_and_sibling;
          Alcotest.test_case "host error contained" `Quick
            test_host_error_contained;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "deterministic" `Quick test_matrix_deterministic;
          Alcotest.test_case "gate holds" `Quick test_matrix_gate;
          Alcotest.test_case "chaos fuzz invariant" `Quick
            test_chaos_fuzz_invariant;
        ] );
    ]
