(* Tests for the Cage library: configurations (Table 3), the sandbox
   model (§6.4), multi-instance processes (§6.3) and the cost-model
   lowering. *)

open Cage

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_table3_complete () =
  Alcotest.(check (list string)) "Table 3 rows in paper order"
    [ "baseline wasm32"; "baseline wasm64"; "Cage-mem-safety";
      "Cage-ptr-auth"; "Cage-sandboxing"; "CAGE" ]
    (List.map (fun c -> c.Config.name) Config.table3)

let test_usable_tags () =
  Alcotest.(check int) "standalone internal: 15 tags" 15
    (Config.usable_tags Config.mem_safety);
  Alcotest.(check int) "combined: 7 tags" 7 (Config.usable_tags Config.full)

let test_exclusion_sets () =
  Alcotest.(check int) "mem-safety allows 15" 15
    (Arch.Tag.Exclude.count_allowed (Config.exclusion Config.mem_safety));
  Alcotest.(check int) "full allows 7" 7
    (Arch.Tag.Exclude.count_allowed (Config.exclusion Config.full));
  (* combined mode must only allow tags with bit 56 set *)
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "tag %d has guest bit" (Arch.Tag.to_int t))
        true
        (Arch.Tag.to_int t land 1 = 1))
    (Arch.Tag.Exclude.allowed (Config.exclusion Config.full))

let test_index_mask () =
  (match Config.index_mask Config.sandboxing with
  | Some mask ->
      let forged = Arch.Ptr.with_tag 0x100L (Arch.Tag.of_int 0xf) in
      Alcotest.(check bool) "sandbox-only mask clears all tag bits" true
        (Arch.Tag.is_zero (Arch.Ptr.tag (mask forged)))
  | None -> Alcotest.fail "sandboxing must mask");
  (match Config.index_mask Config.full with
  | Some mask ->
      let forged = Arch.Ptr.with_tag 0x100L (Arch.Tag.of_int 0xf) in
      Alcotest.(check int) "combined mask clears only bit 56" 0b1110
        (Arch.Tag.to_int (Arch.Ptr.tag (mask forged)))
  | None -> Alcotest.fail "full must mask");
  Alcotest.(check bool) "software bounds needs no mask" true
    (Config.index_mask Config.baseline_wasm64 = None)

let test_max_sandboxes () =
  Alcotest.(check int) "sandbox-only: 15" 15
    (Config.max_sandboxes Config.sandboxing);
  Alcotest.(check int) "combined: 1" 1 (Config.max_sandboxes Config.full)

(* ------------------------------------------------------------------ *)
(* Sandbox                                                             *)
(* ------------------------------------------------------------------ *)

let mk_two_instances cfg =
  let host = Sandbox.create ~config:cfg ~size:(1 lsl 20) () in
  let a = Sandbox.add_instance host ~size:65536 in
  let b = Sandbox.add_instance host ~size:65536 in
  (host, a, b)

let test_sandbox_inbounds_load () =
  let host, a, _ = mk_two_instances Config.sandboxing in
  Sandbox.poke host a ~index:64L 7777L;
  match Sandbox.guest_load host a ~index:64L with
  | Sandbox.Value v -> Alcotest.(check int64) "reads own data" 7777L v
  | _ -> Alcotest.fail "in-bounds load failed"

let test_sandbox_escape_matrix () =
  (* the buggy-lowering OOB read across instances *)
  List.iter
    (fun (cfg, should_escape) ->
      let host, a, b = mk_two_instances cfg in
      Sandbox.poke host a ~index:128L 0xdeadL;
      let index = Int64.add (Int64.sub a.Sandbox.base b.Sandbox.base) 128L in
      let outcome = Sandbox.guest_load ~buggy_lowering:true host b ~index in
      let escaped =
        match outcome with
        | Sandbox.Value v -> Int64.equal v 0xdeadL
        | _ -> false
      in
      Alcotest.(check bool)
        (cfg.Config.name ^ " escape?")
        should_escape escaped)
    [ (Config.baseline_wasm64, true); (Config.sandboxing, false) ]

let test_sandbox_sound_lowering_bounds () =
  (* without the bug, the software check still works *)
  let host, a, b = mk_two_instances Config.baseline_wasm64 in
  Sandbox.poke host a ~index:128L 0xdeadL;
  let index = Int64.add (Int64.sub a.Sandbox.base b.Sandbox.base) 128L in
  match Sandbox.guest_load ~buggy_lowering:false host b ~index with
  | Sandbox.Bounds_trap -> ()
  | _ -> Alcotest.fail "sound bounds check should trap"

let test_sandbox_forged_tag_masked () =
  let host, a, b = mk_two_instances Config.sandboxing in
  Sandbox.poke host a ~index:128L 0xdeadL;
  let index = Int64.add (Int64.sub a.Sandbox.base b.Sandbox.base) 128L in
  (* forge the victim's tag on the index: Fig. 13 masking must strip it *)
  let forged = Arch.Ptr.with_tag index a.Sandbox.tag in
  match Sandbox.guest_load ~buggy_lowering:true host b ~index:forged with
  | Sandbox.Tag_fault _ -> ()
  | Sandbox.Value _ -> Alcotest.fail "forged tag escaped the sandbox"
  | _ -> Alcotest.fail "unexpected outcome"

let test_sandbox_capacity_15 () =
  let host = Sandbox.create ~config:Config.sandboxing ~size:(1 lsl 21) () in
  let rec fill n =
    match Sandbox.add_instance host ~size:4096 with
    | (_ : Sandbox.instance_region) -> fill (n + 1)
    | exception Sandbox.Too_many_sandboxes -> n
  in
  Alcotest.(check int) "15 sandboxes max" 15 (fill 0)

let test_sandbox_distinct_tags () =
  let host = Sandbox.create ~config:Config.sandboxing ~size:(1 lsl 20) () in
  let regions = List.init 8 (fun _ -> Sandbox.add_instance host ~size:4096) in
  let tags = List.map (fun r -> Arch.Tag.to_int r.Sandbox.tag) regions in
  Alcotest.(check int) "all tags distinct" (List.length tags)
    (List.length (List.sort_uniq compare tags))

let test_sandbox_guard_pages_32bit () =
  let host = Sandbox.create ~config:Config.baseline_wasm32 ~size:(1 lsl 20) () in
  let a = Sandbox.add_instance host ~size:65536 in
  (* any 32-bit index beyond the memory hits a guard page *)
  match Sandbox.guest_load host a ~index:0x10000L with
  | Sandbox.Segfault -> ()
  | _ -> Alcotest.fail "guard page should fault"

let test_tag_reuse_extends_capacity () =
  (* §6.4 future work: with distance-based tag reuse, more than 15
     sandboxes fit in one process *)
  let host =
    Sandbox.create ~config:Config.sandboxing
      ~tag_reuse_reach:(Int64.of_int (8 * 4096))
      ~size:(1 lsl 21) ()
  in
  let regions = List.init 40 (fun _ -> Sandbox.add_instance host ~size:4096) in
  Alcotest.(check int) "40 sandboxes" 40 (List.length regions);
  (* neighbours within reach never share a tag *)
  let arr = Array.of_list regions in
  Array.iteri
    (fun i r ->
      Array.iteri
        (fun j r' ->
          if i <> j then
            let dist = Int64.abs (Int64.sub r.Sandbox.base r'.Sandbox.base) in
            if dist <= Int64.of_int (8 * 4096) then
              Alcotest.(check bool)
                (Printf.sprintf "regions %d and %d within reach differ" i j)
                false
                (Arch.Tag.equal r.Sandbox.tag r'.Sandbox.tag))
        arr)
    arr

let test_tag_reuse_still_isolates_neighbours () =
  let reach = Int64.of_int (4 * 65536) in
  let host =
    Sandbox.create ~config:Config.sandboxing ~tag_reuse_reach:reach
      ~size:(1 lsl 21) ()
  in
  let a = Sandbox.add_instance host ~size:65536 in
  let b = Sandbox.add_instance host ~size:65536 in
  Sandbox.poke host a ~index:128L 0xdeadL;
  let index = Int64.add (Int64.sub a.Sandbox.base b.Sandbox.base) 128L in
  match Sandbox.guest_load ~buggy_lowering:true host b ~index with
  | Sandbox.Tag_fault _ -> ()
  | Sandbox.Value _ -> Alcotest.fail "neighbour escape with tag reuse"
  | _ -> Alcotest.fail "unexpected outcome"

let test_heap_base_is_tagged () =
  let host = Sandbox.create ~config:Config.sandboxing ~size:(1 lsl 20) () in
  let r = Sandbox.add_instance host ~size:65536 in
  Alcotest.(check bool) "heap base pointer carries the instance tag" true
    (Arch.Tag.equal (Arch.Ptr.tag (Sandbox.heap_base r)) r.Sandbox.tag)

(* ------------------------------------------------------------------ *)
(* Process (§6.3)                                                      *)
(* ------------------------------------------------------------------ *)

let sign_auth_module =
  let ft = { Wasm.Types.params = [ Wasm.Types.I64 ]; results = [ Wasm.Types.I64 ] } in
  {
    Wasm.Ast.empty_module with
    types = [ ft; ft ];
    funcs =
      [
        { Wasm.Ast.ftype = 0; locals = [];
          body = [ Wasm.Ast.LocalGet 0; Wasm.Ast.PointerSign ];
          fname = Some "sign" };
        { Wasm.Ast.ftype = 1; locals = [];
          body = [ Wasm.Ast.LocalGet 0; Wasm.Ast.PointerAuth ];
          fname = Some "auth" };
      ];
    memory =
      Some { Wasm.Types.mem_idx = Wasm.Types.Idx64;
             mem_limits = { Wasm.Types.min = 1L; max = Some 1L } };
    exports =
      [
        { Wasm.Ast.ex_name = "sign"; ex_desc = Wasm.Ast.Func_export 0 };
        { Wasm.Ast.ex_name = "auth"; ex_desc = Wasm.Ast.Func_export 1 };
      ];
  }

let test_process_modifier_isolation () =
  let p = Process.create ~config:Config.sandboxing () in
  let a = Process.spawn p sign_auth_module in
  let b = Process.spawn p sign_auth_module in
  (* same process key... *)
  Alcotest.(check bool) "shared process key" true
    (Arch.Pac.key_equal a.Wasm.Instance.pac_key b.Wasm.Instance.pac_key);
  (* ...but signatures do not transfer *)
  match Wasm.Exec.invoke a "sign" [ Wasm.Values.I64 77L ] with
  | [ Wasm.Values.I64 signed ] -> (
      (match Wasm.Exec.invoke a "auth" [ Wasm.Values.I64 signed ] with
      | [ Wasm.Values.I64 v ] ->
          Alcotest.(check int64) "A authenticates its own" 77L v
      | _ -> Alcotest.fail "A auth failed");
      match Wasm.Exec.invoke b "auth" [ Wasm.Values.I64 signed ] with
      | _ -> Alcotest.fail "B accepted A's signature"
      | exception Wasm.Instance.Trap _ -> ())
  | _ -> Alcotest.fail "sign failed"

let test_process_spawn_limit () =
  let p = Process.create ~config:Config.full () in
  let (_ : Wasm.Instance.t) = Process.spawn p sign_auth_module in
  match Process.spawn p sign_auth_module with
  | (_ : Wasm.Instance.t) -> Alcotest.fail "combined config allows only one"
  | exception Sandbox.Too_many_sandboxes -> ()

let test_process_polls_deferred_faults () =
  (* the kernel-style context-switch poll: a deferred (Async) tag
     mismatch latched in one instance's TFSR is surfaced by the process
     drain, exactly once *)
  let cfg = { Config.mem_safety with Config.mte_mode = Arch.Mte.Async } in
  let p = Process.create ~config:cfg () in
  let a = Process.spawn p sign_auth_module in
  let _b = Process.spawn p sign_auth_module in
  Alcotest.(check (list (pair int pass))) "quiet process, no faults" []
    (Process.poll_deferred_faults p);
  let mte = Wasm.Instance.mte a in
  let bad_ptr = Arch.Ptr.with_tag 0L (Arch.Tag.of_int 5) in
  (match Arch.Mte.check mte Arch.Mte.Store ~ptr:bad_ptr ~len:16L with
  | Arch.Mte.Deferred _ -> ()
  | _ -> Alcotest.fail "async store mismatch should defer");
  (match Process.poll_deferred_faults p with
  | [ (id, f) ] ->
      Alcotest.(check int) "faulting instance" a.Wasm.Instance.id id;
      Alcotest.(check int64) "fault address" 0L f.Arch.Mte.fault_addr
  | _ -> Alcotest.fail "expected exactly one deferred fault");
  Alcotest.(check (list (pair int pass))) "drained: second poll empty" []
    (Process.poll_deferred_faults p)

(* ------------------------------------------------------------------ *)
(* Lowering cost model                                                 *)
(* ------------------------------------------------------------------ *)

let meter_with ?(loads = 0) ?(stores = 0) ?(seg_new = 0) ?(granules = 0)
    ?(ptr_auth = 0) ?(ialu = 0) () =
  let m = Wasm.Meter.create () in
  m.Wasm.Meter.loads <- loads;
  m.Wasm.Meter.stores <- stores;
  m.Wasm.Meter.seg_new <- seg_new;
  m.Wasm.Meter.seg_new_granules <- granules;
  m.Wasm.Meter.ptr_auth <- ptr_auth;
  m.Wasm.Meter.ialu <- ialu;
  m

let x3 = Arch.Cpu_model.cortex_x3

let test_lowering_bounds_vs_mte () =
  (* same event record: software bounds must cost more than MTE
     sandboxing on every core *)
  let m = meter_with ~loads:10000 ~stores:5000 ~ialu:20000 () in
  List.iter
    (fun cpu ->
      let sw = Lowering.cycles cpu Config.baseline_wasm64 m in
      let mte = Lowering.cycles cpu Config.sandboxing m in
      Alcotest.(check bool)
        (cpu.Arch.Cpu_model.name ^ ": bounds > mte")
        true (sw > mte))
    Arch.Cpu_model.tensor_g3

let test_lowering_segments_cost () =
  let quiet = meter_with ~ialu:1000 () in
  let busy = meter_with ~ialu:1000 ~seg_new:100 ~granules:1000 () in
  let base = Lowering.cycles x3 Config.mem_safety quiet in
  let with_segs = Lowering.cycles x3 Config.mem_safety busy in
  Alcotest.(check bool) "segment work costs cycles" true (with_segs > base);
  (* but only when internal safety is on *)
  let off = Lowering.cycles x3 Config.baseline_wasm64 busy in
  let off_quiet = Lowering.cycles x3 Config.baseline_wasm64 quiet in
  Alcotest.(check bool) "baseline ignores segment events" true
    (Float.abs (off -. off_quiet) < 1e-9)

let test_lowering_auth_costs_little () =
  let plain = meter_with ~ialu:100000 () in
  let authd = meter_with ~ialu:100000 ~ptr_auth:100 () in
  let a = Lowering.cycles x3 Config.ptr_auth plain in
  let b = Lowering.cycles x3 Config.ptr_auth authd in
  let rel = (b -. a) /. a in
  Alcotest.(check bool)
    (Printf.sprintf "100 auths on 100k ops cost %.2f%%" (100.0 *. rel))
    true
    (rel > 0.0 && rel < 0.01)

let test_lowering_positive () =
  let m = meter_with ~loads:1 () in
  List.iter
    (fun cpu ->
      List.iter
        (fun cfg ->
          Alcotest.(check bool)
            (cfg.Config.name ^ "/" ^ cpu.Arch.Cpu_model.name ^ " positive")
            true
            (Lowering.cycles cpu cfg m > 0.0))
        Config.table3)
    Arch.Cpu_model.tensor_g3

let test_startup_ordering () =
  List.iter
    (fun cpu ->
      let base =
        Lowering.startup_seconds cpu Config.baseline_wasm64
          ~mem_bytes:(128.0 *. 1024.0 *. 1024.0)
      in
      let cage =
        Lowering.startup_seconds cpu Config.full
          ~mem_bytes:(128.0 *. 1024.0 *. 1024.0)
      in
      Alcotest.(check bool) "cage startup costs a bit more" true (cage >= base);
      Alcotest.(check bool) "but is hidden (< 10%)" true
        ((cage -. base) /. base < 0.10))
    Arch.Cpu_model.tensor_g3

let prop_lowering_monotone_in_loads =
  QCheck.Test.make ~name:"cost is monotone in access count" ~count:200
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let m1 = meter_with ~loads:lo () in
      let m2 = meter_with ~loads:hi () in
      Lowering.cycles x3 Config.full m1 <= Lowering.cycles x3 Config.full m2)

let prop_price_nonnegative =
  QCheck.Test.make ~name:"any meter prices non-negative" ~count:200
    QCheck.(
      quad (int_bound 10000) (int_bound 10000) (int_bound 1000)
        (int_bound 10000))
    (fun (loads, stores, seg_new, ialu) ->
      let m = meter_with ~loads ~stores ~seg_new ~ialu () in
      List.for_all
        (fun cfg -> Lowering.cycles x3 cfg m >= 0.0)
        Config.table3)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lowering_monotone_in_loads; prop_price_nonnegative ]

let () =
  Alcotest.run "cage"
    [
      ( "config",
        [
          tc "table3 complete" test_table3_complete;
          tc "usable tags" test_usable_tags;
          tc "exclusion sets" test_exclusion_sets;
          tc "index mask" test_index_mask;
          tc "max sandboxes" test_max_sandboxes;
        ] );
      ( "sandbox",
        [
          tc "in-bounds load" test_sandbox_inbounds_load;
          tc "escape matrix" test_sandbox_escape_matrix;
          tc "sound bounds trap" test_sandbox_sound_lowering_bounds;
          tc "forged tag masked" test_sandbox_forged_tag_masked;
          tc "capacity 15" test_sandbox_capacity_15;
          tc "distinct tags" test_sandbox_distinct_tags;
          tc "guard pages 32-bit" test_sandbox_guard_pages_32bit;
          tc "tag reuse capacity (Sec 6.4 ext)" test_tag_reuse_extends_capacity;
          tc "tag reuse isolates" test_tag_reuse_still_isolates_neighbours;
          tc "heap base tagged" test_heap_base_is_tagged;
        ] );
      ( "process",
        [
          tc "modifier isolation" test_process_modifier_isolation;
          tc "spawn limit" test_process_spawn_limit;
          tc "polls deferred faults" test_process_polls_deferred_faults;
        ] );
      ( "lowering",
        [
          tc "bounds > mte" test_lowering_bounds_vs_mte;
          tc "segments cost" test_lowering_segments_cost;
          tc "auth costs little" test_lowering_auth_costs_little;
          tc "always positive" test_lowering_positive;
          tc "startup ordering" test_startup_ordering;
        ] );
      ("cage-properties", qtests);
    ]
