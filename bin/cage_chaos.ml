(* Chaos-engineering driver: render the fault-detection matrix (the
   golden-file CI artifact) or run the chaos fuzzer. Exits nonzero when
   the containment gate fails — an escape under the full Cage
   configuration in Sync mode, a poisoned sibling, or any fuzz
   invariant violation. *)

let usage () =
  prerr_endline
    "usage: cage_chaos matrix [--seed N] [--elide] [--elide-bounds] [--engine E]\n\
    \       cage_chaos fuzz [--count N] [--seed N] [--engine E]\n\
    \       cage_chaos elidediff [--count N] [--seed N] [--full]\n\
    \       cage_chaos enginediff [--count N] [--seed N]\n\
    \       cage_chaos served [--seed N] [--elide-bounds] [--engine E]\n\
     (E = interp | threaded; default threaded)";
  exit 2

let int_flag argv name ~default =
  let rec go = function
    | [] -> default
    | flag :: v :: _ when flag = name -> (
        match int_of_string_opt v with Some n -> n | None -> usage ())
    | _ :: rest -> go rest
  in
  go argv

let engine_flag argv =
  let rec go = function
    | [] -> Wasm.Instance.Threaded
    | "--engine" :: "interp" :: _ -> Wasm.Instance.Interp
    | "--engine" :: "threaded" :: _ -> Wasm.Instance.Threaded
    | "--engine" :: _ :: _ -> usage ()
    | _ :: rest -> go rest
  in
  go argv

let () =
  match Array.to_list Sys.argv with
  | _ :: "matrix" :: rest ->
      let seed = int_flag rest "--seed" ~default:7 in
      let elide = List.mem "--elide" rest in
      let full = List.mem "--elide-bounds" rest in
      let engine = engine_flag rest in
      let results = Harness.Detection_matrix.run ~seed ~elide ~full ~engine () in
      Harness.Detection_matrix.render ~seed Format.std_formatter results;
      if Harness.Detection_matrix.violations results <> [] then exit 1
  | _ :: "fuzz" :: rest ->
      let seed = int_flag rest "--seed" ~default:0xC405 in
      let count = int_flag rest "--count" ~default:200 in
      let engine = engine_flag rest in
      let stats = Harness.Detection_matrix.chaos_fuzz ~seed ~engine ~count () in
      Format.printf "%a@." Harness.Detection_matrix.pp_fuzz_stats stats;
      List.iter print_endline stats.Harness.Detection_matrix.fz_failures;
      if stats.Harness.Detection_matrix.fz_failures <> [] then exit 1
  | _ :: "served" :: rest ->
      (* the detection matrix's serving-path companion: every fault
         site driven through pool + supervisor + retry *)
      let seed = int_flag rest "--seed" ~default:7 in
      let engine = engine_flag rest in
      let full = List.mem "--elide-bounds" rest in
      let rows = Harness.Serve_bench.served_matrix ~seed ~engine ~full () in
      Harness.Serve_bench.render_served ~seed Format.std_formatter rows;
      if Harness.Serve_bench.served_violations rows <> [] then exit 1
  | _ :: "elidediff" :: rest ->
      let seed0 = int_flag rest "--seed" ~default:0 in
      let count = int_flag rest "--count" ~default:200 in
      (* --full arms bounds elision and arena lowering on the elided
         side, so the differential covers the whole analysis pipeline *)
      let full = List.mem "--full" rest in
      let r = Harness.Elide_diff.run ~count ~seed0 ~full () in
      Format.printf "%a@." Harness.Elide_diff.pp r;
      List.iter print_endline r.Harness.Elide_diff.ed_failures;
      if not (Harness.Elide_diff.ok r) then exit 1
  | _ :: "enginediff" :: rest ->
      let seed0 = int_flag rest "--seed" ~default:0 in
      let count = int_flag rest "--count" ~default:200 in
      let r = Harness.Engine_diff.run ~count ~seed0 () in
      Format.printf "%a@." Harness.Engine_diff.pp r;
      List.iter print_endline r.Harness.Engine_diff.gd_failures;
      if not (Harness.Engine_diff.ok r) then exit 1
  | _ -> usage ()
