(* cagec: the MiniC -> (hardened) wasm compiler CLI — the analogue of
   the paper's wasi-sdk clang driver.

     cagec input.c -o out.wasm                     baseline wasm64
     cagec input.c --config CAGE -o out.wasm       full hardening
     cagec input.c --emit-wat                      print text form
     cagec input.c --no-libc ...                   freestanding *)

open Cmdliner

let config_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal c.Cage.Config.name s)
        Cage.Config.table3
    with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S; one of: %s" s
                (String.concat ", "
                   (List.map (fun c -> c.Cage.Config.name) Cage.Config.table3))))
  in
  let print ppf c = Format.pp_print_string ppf c.Cage.Config.name in
  Arg.conv (parse, print)

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.c"
         ~doc:"MiniC source file.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ]
         ~docv:"OUT.wasm" ~doc:"Output wasm binary path.")

let config =
  Arg.(value & opt config_conv Cage.Config.baseline_wasm64
         & info [ "config" ] ~docv:"CONFIG"
             ~doc:"Runtime configuration (Table 3 variant name).")

let emit_wat =
  Arg.(value & flag & info [ "emit-wat" ]
         ~doc:"Print the module in text form instead of writing a binary.")

let no_libc =
  Arg.(value & flag & info [ "no-libc" ]
         ~doc:"Do not prepend the libc prelude (freestanding program).")

let instrument_all =
  Arg.(value & flag & info [ "instrument-all" ]
         ~doc:"Ablation: instrument every stack slot, skipping Algorithm 1.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print stack-sanitizer statistics.")

let wstack =
  Arg.(value & flag & info [ "Wstack" ]
         ~doc:"Print per-function stack-sanitizer decisions (Algorithm 1) \
               and the module totals as Cage metrics counters.")

let elide =
  Arg.(value & flag & info [ "elide-checks" ]
         ~doc:"Run the static tag-safety analysis and print the \
               check-elision plan (accesses proven safe per module).")

let elide_bounds =
  Arg.(value & flag & info [ "elide-bounds" ]
         ~doc:"With --elide-checks: also report full-check elision (span \
               checks proven redundant) and arena lowering (segments whose \
               tag-plane writes disappear).")

let no_spec_elide =
  Arg.(value & flag & info [ "no-spec-elide" ]
         ~doc:"Restrict the elision plan to proofs that survive the \
               Swivel-style speculation model; checks that are only \
               architecturally redundant stay.")

let wfusion =
  Arg.(value & flag & info [ "Wfusion" ]
         ~doc:"Print per-function threaded-code superinstruction decisions \
               and the module totals as Cage metrics counters.")

let engine_conv =
  let parse = function
    | "interp" -> Ok Wasm.Instance.Interp
    | "threaded" -> Ok Wasm.Instance.Threaded
    | s ->
        Error (`Msg (Printf.sprintf "unknown engine %S (interp|threaded)" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | Wasm.Instance.Interp -> "interp"
      | Wasm.Instance.Threaded -> "threaded")
  in
  Cmdliner.Arg.conv (parse, print)

let engine =
  Arg.(value & opt engine_conv Wasm.Instance.Threaded
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine recorded in the configuration (and used \
                 by anything that runs the output): 'threaded' (default) \
                 or 'interp'.")

let run input output config emit_wat no_libc instrument_all stats wstack
    elide elide_bounds no_spec_elide wfusion engine =
  let config = Cage.Config.with_engine engine config in
  let source = In_channel.with_open_text input In_channel.input_all in
  let opts =
    { (Minic.Driver.options_of_config config) with
      Minic.Driver.instrument_all }
  in
  let prelude =
    if no_libc then "" else Libc.Source.prelude_of_config config
  in
  match Minic.Driver.compile ~opts ~prelude source with
  | exception Minic.Driver.Compile_error msg ->
      Printf.eprintf "cagec: %s\n" msg;
      exit 1
  | compiled ->
      if stats then
        Format.eprintf "sanitizer: %a@." Minic.Stack_sanitizer.pp_stats
          compiled.co_sanitizer;
      if wstack then begin
        (* Re-run Algorithm 1 per function (idempotent: the compile
           already ran it with the same knob) to attribute the module
           totals to the functions they came from. *)
        List.iter
          (fun (f : Minic.Ir.func) ->
            let s = Minic.Stack_sanitizer.run_func ~instrument_all f in
            if s.Minic.Stack_sanitizer.total_slots > 0 then
              Format.eprintf "%s: %a@." f.Minic.Ir.fn_name
                Minic.Stack_sanitizer.pp_stats s)
          compiled.co_ir.Minic.Ir.pr_funcs;
        let t = compiled.co_sanitizer in
        let m = Obs.Metrics.cage () in
        Obs.Metrics.observe_event m
          (Obs.Event.Stack_sanitize
             {
               total = t.Minic.Stack_sanitizer.total_slots;
               instrumented = t.Minic.Stack_sanitizer.instrumented;
               escaping = t.Minic.Stack_sanitizer.escaping;
               unsafe_gep = t.Minic.Stack_sanitizer.unsafe_gep;
               guards = t.Minic.Stack_sanitizer.guards;
             });
        String.split_on_char '\n'
          (Obs.Metrics.prometheus_string m.Obs.Metrics.registry)
        |> List.iter (fun line ->
               if String.length line >= 10
                  && String.sub line 0 10 = "cage_stack"
               then Format.eprintf "%s@." line)
      end;
      let mk_plan () =
        Analysis.Elide.plan ~spec_safe:no_spec_elide ~arena:elide_bounds
          compiled.co_module
      in
      if elide then begin
        let plan = mk_plan () in
        Format.eprintf
          "elision: %d of %d checked accesses proven safe@."
          plan.Analysis.Elide.proven plan.Analysis.Elide.considered;
        if elide_bounds then
          Format.eprintf
            "elision: %d span checks proven redundant; %d allocation sites \
             arena-lowered (%d segment.new, %d segment.free)@."
            plan.Analysis.Elide.bproven plan.Analysis.Elide.arena_sites
            plan.Analysis.Elide.arena_news plan.Analysis.Elide.arena_frees;
        if no_spec_elide then
          Format.eprintf
            "elision: %d architecturally-provable elisions withheld \
             (speculation-unsafe)@."
            plan.Analysis.Elide.spec_unsafe
      end;
      if wfusion then begin
        (* Lower every function exactly as instantiation would (same
           elision plan when requested) and report what fused. *)
        let elide_sets =
          if elide || config.Cage.Config.elide_checks then
            (mk_plan ()).Analysis.Elide.bitsets
          else [||]
        in
        let fstats =
          Wasm.Compile.module_stats ~elide:elide_sets compiled.co_module
        in
        List.iter
          (fun (s : Wasm.Xcode.stats) ->
            if s.Wasm.Xcode.st_instrs > 0 || not s.Wasm.Xcode.st_supported
            then Format.eprintf "%a@." Wasm.Xcode.pp_stats s)
          fstats;
        let total f =
          List.fold_left (fun acc s -> acc + f s) 0 fstats
        in
        let m = Obs.Metrics.cage () in
        Obs.Metrics.observe_event m
          (Obs.Event.Code_fuse
             {
               instrs = total (fun s -> s.Wasm.Xcode.st_instrs);
               fused = total (fun s -> s.Wasm.Xcode.st_fused);
               accesses = total (fun s -> s.Wasm.Xcode.st_accesses);
               elided = total (fun s -> s.Wasm.Xcode.st_elided);
             });
        String.split_on_char '
'
          (Obs.Metrics.prometheus_string m.Obs.Metrics.registry)
        |> List.iter (fun line ->
               if String.length line >= 10
                  && String.sub line 0 10 = "cage_fused"
               then Format.eprintf "%s@." line)
      end;
      if emit_wat then
        print_string (Wasm.Text.to_string compiled.co_module)
      else begin
        let out =
          match output with
          | Some o -> o
          | None -> Filename.remove_extension input ^ ".wasm"
        in
        Wasm.Binary.write_file out compiled.co_module;
        Printf.printf "wrote %s (%s)\n" out config.Cage.Config.name
      end

let cmd =
  let doc = "compile MiniC to (Cage-hardened) WebAssembly" in
  Cmd.v
    (Cmd.info "cagec" ~doc)
    Term.(
      const run $ input $ output $ config $ emit_wat $ no_libc
      $ instrument_all $ stats $ wstack $ elide $ elide_bounds
      $ no_spec_elide $ wfusion $ engine)

let () = exit (Cmd.eval cmd)
