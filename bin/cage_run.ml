(* cage_run: execute a .wasm file (or compile-and-run a .c file) under a
   chosen Cage runtime configuration — the analogue of the paper's
   modified wasmtime.

     cage_run module.wasm                   run exported "main"
     cage_run module.wat                    text-format module
     cage_run program.c --config CAGE       compile + run
     cage_run module.wasm --invoke f 1 2    call f(1, 2) *)

open Cmdliner

let config_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal c.Cage.Config.name s)
        Cage.Config.table3
    with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown config %S" s))
  in
  let print ppf c = Format.pp_print_string ppf c.Cage.Config.name in
  Arg.conv (parse, print)

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODULE"
         ~doc:"A .wasm binary or a MiniC .c source file.")

let config =
  Arg.(value & opt config_conv Cage.Config.full
         & info [ "config" ] ~docv:"CONFIG"
             ~doc:"Runtime configuration (Table 3 variant name).")

let entry =
  Arg.(value & opt string "main" & info [ "invoke" ] ~docv:"FUNC"
         ~doc:"Exported function to call.")

let args =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS"
         ~doc:"Integer arguments for the entry point.")

let show_meter =
  Arg.(value & flag & info [ "meter" ]
         ~doc:"Print the execution-event counts after the run.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record an execution trace and write it as Chrome \
               trace_event JSON (open in chrome://tracing or \
               ui.perfetto.dev).")

let show_metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Collect the Cage safety-event metric set and print it in \
               Prometheus text format on stdout after the run.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Sample the wasm call stack and write folded-stack lines \
               to FILE (flamegraph input); a per-function attribution \
               table goes to stderr.")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"Deterministic seed for allocation-tag draws.")

let elide =
  Arg.(value & flag & info [ "elide-checks" ]
         ~doc:"Run the static tag-safety analysis first and skip the MTE \
               granule checks it proved redundant.")

let elide_bounds =
  Arg.(value & flag & info [ "elide-bounds" ]
         ~doc:"With --elide-checks: also skip the sandbox span checks the \
               analysis proved redundant and lower non-escaping segments \
               to the tag-write-free arena form.")

let no_spec_elide =
  Arg.(value & flag & info [ "no-spec-elide" ]
         ~doc:"Keep every check whose elision proof does not survive the \
               Swivel-style speculation model.")

let engine_conv =
  let parse = function
    | "interp" -> Ok Wasm.Instance.Interp
    | "threaded" -> Ok Wasm.Instance.Threaded
    | s ->
        Error (`Msg (Printf.sprintf "unknown engine %S (interp|threaded)" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | Wasm.Instance.Interp -> "interp"
      | Wasm.Instance.Threaded -> "threaded")
  in
  Cmdliner.Arg.conv (parse, print)

let engine =
  Arg.(value & opt engine_conv Wasm.Instance.Threaded
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: 'threaded' (direct-threaded code, the \
                 default) or 'interp' (the reference interpreter). \
                 Results are identical either way; only wall-clock time \
                 differs.")

let run input config entry args show_meter trace_out show_metrics profile_out
    seed elide elide_bounds no_spec_elide engine =
  let config = if elide then Cage.Config.with_elision config else config in
  let config =
    if elide_bounds then
      Cage.Config.with_arena (Cage.Config.with_bounds_elision config)
    else config
  in
  let config =
    if no_spec_elide then Cage.Config.with_spec_safe_only config else config
  in
  let config = Cage.Config.with_engine engine config in
  let meter = Wasm.Meter.create () in
  let wasi = Libc.Wasi.create () in
  (* Observability sink: any of --trace/--metrics/--profile installs
     one; with none of them the interpreter pays a single load-and-
     compare per instruction. *)
  let trace = Option.map (fun _ -> Obs.Trace.create ()) trace_out in
  let metrics = if show_metrics then Some (Obs.Metrics.cage ()) else None in
  let profiler = Option.map (fun _ -> Obs.Profiler.create ()) profile_out in
  if trace <> None || metrics <> None || profiler <> None then
    Obs.Hook.install (Obs.Hook.make ?trace ?metrics ?profiler ());
  let last_inst = ref None in
  let result =
    try
      let values =
        if Filename.check_suffix input ".wasm"
           || Filename.check_suffix input ".wat" then begin
          let m =
            if Filename.check_suffix input ".wat" then
              Wasm.Text.parse
                (In_channel.with_open_text input In_channel.input_all)
            else Wasm.Binary.read_file input
          in
          (match Wasm.Validate.validate m with
          | Ok () -> ()
          | Error e -> failwith ("invalid module: " ^ e));
          let iconfig = Cage.Config.instance_config ~meter ~seed config in
          let iconfig =
            if config.Cage.Config.elide_checks then begin
              let plan =
                Analysis.Elide.plan
                  ~spec_safe:config.Cage.Config.spec_safe_only
                  ~arena:config.Cage.Config.arena m
              in
              { iconfig with
                Wasm.Instance.elide = plan.Analysis.Elide.bitsets;
                belide =
                  (if config.Cage.Config.elide_bounds then
                     plan.Analysis.Elide.bbitsets
                   else [||]);
                arena = plan.Analysis.Elide.arena;
              }
            end
            else iconfig
          in
          let inst =
            Wasm.Exec.instantiate ~config:iconfig
              ~imports:(Libc.Wasi.imports wasi) m
          in
          last_inst := Some inst;
          let vargs =
            List.map (fun a -> Wasm.Values.I64 (Int64.of_string a)) args
          in
          Wasm.Exec.invoke inst entry vargs
        end
        else begin
          let source = In_channel.with_open_text input In_channel.input_all in
          let r = Libc.Run.run ~cfg:config ~meter ~seed ~entry source in
          last_inst := Some r.Libc.Run.instance;
          r.Libc.Run.values
        end
      in
      Ok values
    with
    | Wasm.Instance.Trap msg -> Error ("trap: " ^ msg)
    | Libc.Wasi.Proc_exit code -> Ok [ Wasm.Values.I32 (Int32.of_int code) ]
    | Minic.Driver.Compile_error msg -> Error msg
    | Wasm.Text.Parse_error msg -> Error ("wat parse error: " ^ msg)
    | Wasm.Binary.Decode_error msg -> Error ("decode error: " ^ msg)
    | Failure msg -> Error msg
  in
  Obs.Hook.uninstall ();
  print_string (Libc.Wasi.output wasi);
  (match result with
  | Ok values ->
      List.iter
        (fun v -> Format.printf "%s() -> %a@." entry Wasm.Values.pp v)
        values
  | Error msg ->
      Format.printf "%s@." msg);
  if show_meter then Format.eprintf "%a@." Wasm.Meter.pp meter;
  (* Dump collected observability output even when the run trapped: a
     crash trace is the most interesting trace there is. *)
  (match (trace_out, trace) with
  | Some file, Some tr ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc (Obs.Trace.to_chrome_json tr));
      Format.eprintf "trace: %d events (%d dropped) -> %s@."
        (Obs.Trace.recorded tr) (Obs.Trace.dropped tr) file
  | _ -> ());
  (match metrics with
  | Some m -> print_string (Obs.Metrics.prometheus_string m.Obs.Metrics.registry)
  | None -> ());
  (match (profile_out, profiler) with
  | Some file, Some p ->
      (* Attribute the tail of the run; execution has returned to the
         host, so the tail lands on the "(host)" frame. *)
      Obs.Profiler.flush p ~stack:[] ~total:(Wasm.Meter.total meter);
      let name =
        match !last_inst with
        | Some inst -> Wasm.Instance.func_name inst
        | None -> Printf.sprintf "f%d"
      in
      Out_channel.with_open_text file (fun oc ->
          List.iter
            (fun (stack, w) -> Printf.fprintf oc "%s %d\n" stack w)
            (Obs.Profiler.folded p ~name));
      Format.eprintf "@[<v>profile: %d samples over %d metered events@,"
        (Obs.Profiler.samples p)
        (Obs.Profiler.total_weight p);
      List.iter
        (fun { Obs.Profiler.fn; self; total } ->
          Format.eprintf "  %-24s self %8d  total %8d@," fn self total)
        (Obs.Profiler.attribution p ~name);
      Format.eprintf "@]%!"
  | _ -> ());
  match result with Ok _ -> 0 | Error _ -> 1

let cmd =
  let doc = "run WebAssembly under a Cage runtime configuration" in
  Cmd.v
    (Cmd.info "cage_run" ~doc)
    Term.(const run $ input $ config $ entry $ args $ show_meter $ trace_out
          $ show_metrics $ profile_out $ seed $ elide $ elide_bounds
          $ no_spec_elide $ engine)

let () = exit (Cmd.eval' cmd)
