(* Multi-tenant serving benchmark: replay a seeded mixed-tenant request
   stream through the snapshot-pool serving runtime twice — chaos off,
   then chaos on with an identical arrival schedule — and report
   throughput, latency percentiles, robustness-policy activity and the
   chaos-on/off goodput ratio per tenant.

   The robustness gate (exit 1 on failure):
   - zero ESCAPED requests under chaos: no corrupted result may ever
     reach a client;
   - every well-behaved tenant keeps >= 80% of its chaos-off goodput
     while the malicious tenant crash-loops next door. *)

let usage () =
  prerr_endline
    "usage: cage_serve [--requests N] [--seed N] [--smoke] [--json FILE] \
     [--engine interp|threaded] [--trace-requests FILE] [--slo-report]";
  exit 2

let int_flag argv name ~default =
  let rec go = function
    | [] -> default
    | flag :: v :: _ when flag = name -> (
        match int_of_string_opt v with Some n -> n | None -> usage ())
    | _ :: rest -> go rest
  in
  go argv

let str_flag argv name ~default =
  let rec go = function
    | [] -> default
    | flag :: v :: _ when flag = name -> v
    | _ :: rest -> go rest
  in
  go argv

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

(* Goodput per million simulated cycles. *)
let throughput (r : Serve.Server.report) =
  if r.Serve.Server.rp_makespan = 0 then 0.0
  else
    1_000_000.0
    *. float_of_int r.Serve.Server.rp_ok
    /. float_of_int r.Serve.Server.rp_makespan

let report_table ppf label (r : Serve.Server.report) =
  Harness.Report.title ppf "Serving replay: %s" label;
  Harness.Report.table ppf
    ~header:
      [ "tenant"; "requests"; "ok"; "failed"; "shed"; "escaped"; "sanitized";
        "crashes"; "retries"; "trips"; "p50"; "p99" ]
    (List.map
       (fun (tr : Serve.Server.tenant_report) ->
         [
           tr.Serve.Server.tr_name;
           string_of_int tr.Serve.Server.tr_requests;
           string_of_int tr.Serve.Server.tr_ok;
           string_of_int tr.Serve.Server.tr_failed;
           string_of_int tr.Serve.Server.tr_shed;
           string_of_int tr.Serve.Server.tr_escaped;
           string_of_int tr.Serve.Server.tr_sanitized;
           string_of_int tr.Serve.Server.tr_crashes;
           string_of_int tr.Serve.Server.tr_retries;
           string_of_int tr.Serve.Server.tr_breaker_trips;
           string_of_int tr.Serve.Server.tr_p50;
           string_of_int tr.Serve.Server.tr_p99;
         ])
       r.Serve.Server.rp_tenants);
  Format.fprintf ppf
    "  ok %d/%d (%.1f%%)  p50 %d  p99 %d  makespan %d cycles  %.2f ok/Mcycle@."
    r.Serve.Server.rp_ok r.Serve.Server.rp_requests
    (pct r.Serve.Server.rp_ok r.Serve.Server.rp_requests)
    r.Serve.Server.rp_p50 r.Serve.Server.rp_p99 r.Serve.Server.rp_makespan
    (throughput r);
  Format.fprintf ppf "  exact percentiles (nearest-rank): p50 %d  p99 %d@."
    r.Serve.Server.rp_p50_exact r.Serve.Server.rp_p99_exact;
  Format.fprintf ppf
    "  restores %d  heals %d (deferred %d)  injections %d  queue hwm %d@."
    r.Serve.Server.rp_restores r.Serve.Server.rp_heals
    r.Serve.Server.rp_heals_deferred r.Serve.Server.rp_injections
    r.Serve.Server.rp_max_ready

let tenant_json b (cmp : Harness.Serve_bench.comparison)
    (tr : Serve.Server.tenant_report) =
  let on_ =
    match
      Serve.Server.tenant_of cmp.Harness.Serve_bench.cmp_on
        tr.Serve.Server.tr_name
    with
    | Some t -> t
    | None -> tr
  in
  Buffer.add_string b
    (Printf.sprintf
       "    { \"tenant\": %S, \"goodput_off\": %d, \"goodput_on\": %d,\n\
       \      \"goodput_ratio\": %.4f, \"escaped_on\": %d, \"sanitized_on\": \
        %d,\n\
       \      \"crashes_on\": %d, \"retries_on\": %d, \"shed_on\": %d,\n\
       \      \"breaker_trips_on\": %d, \"p50_on\": %d, \"p99_on\": %d,\n\
       \      \"p50_exact_on\": %d, \"p99_exact_on\": %d }"
       tr.Serve.Server.tr_name tr.Serve.Server.tr_ok on_.Serve.Server.tr_ok
       (Harness.Serve_bench.goodput_ratio cmp tr.Serve.Server.tr_name)
       on_.Serve.Server.tr_escaped on_.Serve.Server.tr_sanitized
       on_.Serve.Server.tr_crashes on_.Serve.Server.tr_retries
       on_.Serve.Server.tr_shed on_.Serve.Server.tr_breaker_trips
       on_.Serve.Server.tr_p50 on_.Serve.Server.tr_p99
       on_.Serve.Server.tr_p50_exact on_.Serve.Server.tr_p99_exact)

let write_json path requests seed (cmp : Harness.Serve_bench.comparison)
    ~wall_off ~wall_on ~gate_pass =
  let off = cmp.Harness.Serve_bench.cmp_off
  and on_ = cmp.Harness.Serve_bench.cmp_on in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"requests\": %d,\n  \"seed\": %d,\n" requests seed);
  let side name (r : Serve.Server.report) wall =
    Buffer.add_string b
      (Printf.sprintf
         "  \"%s\": { \"ok\": %d, \"failed\": %d, \"shed\": %d, \"escaped\": \
          %d,\n\
         \    \"sanitized\": %d, \"crashes\": %d, \"retries\": %d, \
          \"timeouts\": %d,\n\
         \    \"breaker_trips\": %d, \"restores\": %d, \"heals\": %d,\n\
         \    \"injections\": %d, \"p50_cycles\": %d, \"p99_cycles\": %d,\n\
         \    \"p50_exact_cycles\": %d, \"p99_exact_cycles\": %d,\n\
         \    \"makespan_cycles\": %d, \"ok_per_mcycle\": %.4f, \
          \"wall_s\": %.3f },\n"
         name r.Serve.Server.rp_ok r.Serve.Server.rp_failed
         r.Serve.Server.rp_shed r.Serve.Server.rp_escaped
         r.Serve.Server.rp_sanitized r.Serve.Server.rp_crashes
         r.Serve.Server.rp_retries r.Serve.Server.rp_timeouts
         r.Serve.Server.rp_breaker_trips r.Serve.Server.rp_restores
         r.Serve.Server.rp_heals r.Serve.Server.rp_injections
         r.Serve.Server.rp_p50 r.Serve.Server.rp_p99
         r.Serve.Server.rp_p50_exact r.Serve.Server.rp_p99_exact
         r.Serve.Server.rp_makespan (throughput r) wall)
  in
  side "chaos_off" off wall_off;
  side "chaos_on" on_ wall_on;
  Buffer.add_string b "  \"tenants\": [\n";
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_string b ",\n";
      tenant_json b cmp tr)
    off.Serve.Server.rp_tenants;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"gate\": \"%s\"\n}\n"
       (if gate_pass then "PASS" else "FAIL"));
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" argv in
  let requests = int_flag argv "--requests" ~default:(if smoke then 4_000 else 100_000) in
  let seed = int_flag argv "--seed" ~default:42 in
  let json = str_flag argv "--json" ~default:(if smoke then "" else "BENCH_serve.json") in
  let engine =
    match str_flag argv "--engine" ~default:"threaded" with
    | "interp" -> Wasm.Instance.Interp
    | "threaded" -> Wasm.Instance.Threaded
    | _ -> usage ()
  in
  let trace_path = str_flag argv "--trace-requests" ~default:"" in
  let slo_report = List.mem "--slo-report" argv in
  let recorder =
    if trace_path <> "" then Some (Obs.Span.create ()) else None
  in
  let collect =
    if slo_report then Some (Serve.Slo.collector ()) else None
  in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let (cmp, wall) =
    time (fun () ->
        Harness.Serve_bench.compare ~requests ~seed ~engine ?recorder
          ?collect ())
  in
  (* one wall figure per side is approximated by an even split; the
     simulated-cycle makespans are the meaningful clocks *)
  let wall_off = wall /. 2.0 and wall_on = wall /. 2.0 in
  let ppf = Format.std_formatter in
  report_table ppf "chaos off" cmp.Harness.Serve_bench.cmp_off;
  report_table ppf "chaos on" cmp.Harness.Serve_bench.cmp_on;
  let escapes, bad = Harness.Serve_bench.gate cmp in
  Harness.Report.title ppf "Robustness gate";
  Format.fprintf ppf "  escaped under chaos : %d (must be 0)@." escapes;
  List.iter
    (fun (tr : Serve.Server.tenant_report) ->
      Format.fprintf ppf "  goodput ratio %-9s: %.3f@."
        tr.Serve.Server.tr_name
        (Harness.Serve_bench.goodput_ratio cmp tr.Serve.Server.tr_name))
    cmp.Harness.Serve_bench.cmp_off.Serve.Server.rp_tenants;
  let gate_pass = escapes = 0 && bad = [] in
  Format.fprintf ppf "  gate: %s@."
    (if gate_pass then "PASS (zero escapes, all tenants >= 80% goodput)"
     else "FAIL");
  List.iter
    (fun (name, r) ->
      Format.fprintf ppf "    tenant %s degraded to %.3f of chaos-off goodput@."
        name r)
    bad;
  (match recorder with
  | None -> ()
  | Some r ->
      let oc = open_out trace_path in
      output_string oc (Obs.Span.to_chrome_json r);
      close_out oc;
      Format.fprintf ppf
        "  wrote %s (%d span records, %d dropped) — open in \
         chrome://tracing or ui.perfetto.dev@."
        trace_path (Obs.Span.size r) (Obs.Span.dropped r));
  (match collect with
  | None -> ()
  | Some co ->
      let on_ = cmp.Harness.Serve_bench.cmp_on in
      let makespan = on_.Serve.Server.rp_makespan in
      (* burn rates at three granularities: a short window that catches
         bursts, a medium one, and the whole run *)
      let windows =
        [
          ("1%", max 1 (makespan / 100));
          ("10%", max 1 (makespan / 10));
          ("all", makespan);
        ]
      in
      Harness.Report.title ppf "Per-tenant SLO monitors (chaos on)";
      Serve.Slo.render_slo ppf co ~now:makespan ~windows;
      Harness.Report.title ppf "Tail-latency attribution (chaos on)";
      Serve.Slo.render_tail ppf co ~pct:99.0;
      Harness.Report.title ppf "Fault -> request correlation (chaos on)";
      Serve.Slo.render_hits ppf co;
      (* accounting cross-check: every metered guest cycle the pool
         served must reappear in exactly one attribution bucket *)
      let attributed = Serve.Slo.exec_cycles co in
      let served = on_.Serve.Server.rp_served_cycles in
      Format.fprintf ppf
        "  exec reconciliation: attributed %d cycles, pool served %d — %s@."
        attributed served
        (if attributed = served then "exact" else "MISMATCH"));
  if json <> "" then begin
    write_json json requests seed cmp ~wall_off ~wall_on ~gate_pass;
    Format.fprintf ppf "  wrote %s (%.2fs total)@." json wall
  end;
  if not gate_pass then exit 1
