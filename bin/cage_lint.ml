(* cage_lint: whole-module static tag-safety analyzer.

   Runs the Analysis dataflow over the compiled module and prints every
   deterministic diagnostic — use-after-free, double free, constant
   out-of-bounds (including bulk-memory spans and strcpy from constant
   strings), untagged pointers reaching checked accesses, leaked
   segments — plus the check-elision summary.

     cage_lint input.c                        lint one program
     cage_lint --cve-suite                    lint every Table 2 CVE program
     cage_lint input.c --config CAGE          lint under another variant

   Output is deterministic (sorted, deduplicated) so CI golden-diffs
   it. The exit code is 0 whenever linting ran — diagnostics are the
   output, not a failure — and 1 on compile/usage errors. *)

open Cmdliner

let config_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal c.Cage.Config.name s)
        Cage.Config.table3
    with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S; one of: %s" s
                (String.concat ", "
                   (List.map (fun c -> c.Cage.Config.name) Cage.Config.table3))))
  in
  let print ppf c = Format.pp_print_string ppf c.Cage.Config.name in
  Arg.conv (parse, print)

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.c"
         ~doc:"MiniC source file to lint.")

let config =
  Arg.(value & opt config_conv Cage.Config.mem_safety
         & info [ "config" ] ~docv:"CONFIG"
             ~doc:"Compile under this Table 3 variant before analyzing.")

let cve_suite =
  Arg.(value & flag & info [ "cve-suite" ]
         ~doc:"Lint every Table 2 CVE re-creation instead of a file.")

let polybench =
  Arg.(value & flag & info [ "polybench" ]
         ~doc:"Lint every PolyBench kernel instead of a file.")

let no_libc =
  Arg.(value & flag & info [ "no-libc" ]
         ~doc:"Do not prepend the libc prelude (freestanding program).")

let wspectre =
  Arg.(value & flag & info [ "Wspectre" ]
         ~doc:"Classify elidable checks under the Swivel-style speculation \
               model and list the sites whose proof does not survive it.")

let json =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the report as stable JSON (one document per program) \
               instead of text.")

let lint_source ~label ~cfg ~prelude ~wspectre ~json source =
  let opts = Minic.Driver.options_of_config cfg in
  match Minic.Driver.compile ~opts ~prelude source with
  | exception Minic.Driver.Compile_error msg ->
      Printf.eprintf "cage_lint: %s: %s\n" label msg;
      false
  | compiled ->
      let t = Analysis.Lint.run ~wspectre compiled.Minic.Driver.co_module in
      if json then begin
        Format.printf "{\"program\": \"%s\", \"config\": \"%s\", \"report\": "
          (String.escaped label) cfg.Cage.Config.name;
        Format.printf "%s}@." (String.trim (Analysis.Lint.to_json t))
      end
      else begin
        Format.printf "cage-lint: %s (%s)@." label cfg.Cage.Config.name;
        List.iter
          (fun l -> Format.printf "  %s@." l)
          (Analysis.Lint.to_lines t)
      end;
      true

let run input config cve_suite polybench no_libc wspectre json =
  let prelude =
    if no_libc then "" else Libc.Source.prelude_of_config config
  in
  let lint_source = lint_source ~cfg:config ~prelude ~wspectre ~json in
  let ok =
    if cve_suite then
      List.fold_left
        (fun ok (e : Workloads.Cve_suite.entry) ->
          lint_source ~label:e.cve e.source && ok)
        true Workloads.Cve_suite.entries
    else if polybench then
      List.fold_left
        (fun ok (k : Workloads.Polybench.kernel) ->
          lint_source ~label:k.k_name k.k_source && ok)
        true Workloads.Polybench.all
    else
      match input with
      | Some file ->
          let source = In_channel.with_open_text file In_channel.input_all in
          lint_source ~label:file source
      | None ->
          Printf.eprintf "cage_lint: pass INPUT.c or --cve-suite\n";
          false
  in
  if ok then 0 else 1

let cmd =
  let doc = "statically analyze a Cage module for tag-safety bugs" in
  Cmd.v
    (Cmd.info "cage_lint" ~doc)
    Term.(
      const run $ input $ config $ cve_suite $ polybench $ no_libc $ wspectre
      $ json)

let () = exit (Cmd.eval' cmd)
