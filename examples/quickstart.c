/* The quickstart's buggy parser (examples/quickstart.ml), as an
   on-disk file so the CLI can drive it directly:

     dune exec bin/cage_run.exe -- examples/quickstart.c --config CAGE

   The off-by-one write lands on a differently-tagged granule under
   CAGE, so the run always ends in a tag fault — which makes this the
   deterministic input CI uses for the --metrics golden snapshot. */

int parse(char *input, int len) {
  char field[16];
  for (int i = 0; i <= len; i++) {   /* <= should be < */
    field[i % 32] = input[i % 8];    /* dynamic index: instrumented */
  }
  return (int)field[0];
}

int main() {
  char *input = (char *)malloc(8);
  for (int i = 0; i < 8; i++) { input[i] = (char)(65 + i); }
  return parse(input, 16);
}
