(* cores=1: two near-simultaneous requests; if the completion branch
   never re-dispatches, the second job strands in the ready queue and
   the Heal event self-perpetuates forever. *)
let () =
  let tenants = Harness.Serve_bench.tenants ~seed:42 () in
  let compute = List.hd tenants in
  let config =
    { Serve.Server.default_config with
      Serve.Server.cores = 1; requests = 8; slots = 4;
      arrival_gap = 1 (* all arrivals land nearly together *) }
  in
  let report = Serve.Server.run config [ compute ] in
  Printf.printf "DONE ok=%d failed=%d shed=%d requests=%d\n%!"
    report.Serve.Server.rp_ok report.Serve.Server.rp_failed
    report.Serve.Server.rp_shed report.Serve.Server.rp_requests
