#!/bin/sh
# Compare key fields of a freshly generated benchmark JSON against a
# committed baseline, with per-key tolerance bands. Flat-JSON greps on
# purpose: the bench writers emit one "key": value per line, and this
# script must run on the bare build image (POSIX sh + awk, no jq).
#
# usage: bench-diff.sh <fresh.json> <baseline.json> KEY:MODE:TOL ...
#
#   KEY:rel:0.10   relative drift |fresh-base| / max(|base|,eps) <= 0.10
#   KEY:abs:2.0    absolute drift |fresh-base| <= 2.0
#   KEY:eq         exact equality (counters that must not move at all)
#
# Exit 1 if any key drifts out of band or is missing on either side.
set -u

if [ $# -lt 3 ]; then
  echo "usage: bench-diff.sh <fresh.json> <baseline.json> KEY:MODE:TOL ..." >&2
  exit 2
fi

fresh=$1; base=$2; shift 2
for f in "$fresh" "$base"; do
  [ -f "$f" ] || { echo "bench-diff: missing file $f" >&2; exit 1; }
done

# First occurrence of "key": <number> (bare or quoted number).
extract() { # file key
  sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\(-\{0,1\}[0-9][0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}

fail=0
for spec in "$@"; do
  key=${spec%%:*}
  rest=${spec#*:}
  mode=${rest%%:*}
  tol=${rest#*:}
  a=$(extract "$fresh" "$key")
  b=$(extract "$base" "$key")
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "bench-diff: FAIL $key: missing (fresh='${a:-}' baseline='${b:-}')"
    fail=1
    continue
  fi
  case "$mode" in
    eq)
      if awk "BEGIN { exit !($a == $b) }"; then
        echo "bench-diff: ok   $key: $a == $b"
      else
        echo "bench-diff: FAIL $key: $a != baseline $b (must be exact)"
        fail=1
      fi
      ;;
    abs)
      if awk "BEGIN { d = $a - $b; if (d < 0) d = -d; exit !(d <= $tol) }"; then
        echo "bench-diff: ok   $key: $a vs $b (abs tol $tol)"
      else
        echo "bench-diff: FAIL $key: $a drifted from baseline $b by more than $tol"
        fail=1
      fi
      ;;
    rel)
      if awk "BEGIN { d = $a - $b; if (d < 0) d = -d; \
                      m = $b; if (m < 0) m = -m; if (m < 1e-12) m = 1e-12; \
                      exit !(d / m <= $tol) }"; then
        echo "bench-diff: ok   $key: $a vs $b (rel tol $tol)"
      else
        echo "bench-diff: FAIL $key: $a drifted from baseline $b by more than $(awk "BEGIN { print $tol * 100 }")%"
        fail=1
      fi
      ;;
    *)
      echo "bench-diff: FAIL $key: unknown mode '$mode'" >&2
      fail=1
      ;;
  esac
done
exit $fail
