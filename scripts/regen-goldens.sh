#!/bin/sh
# Regenerate every golden file CI diffs against. Run after a change
# that legitimately shifts golden output (new metrics registered, new
# matrix rows/columns, reworded lint diagnostics), then review the
# git diff of test/golden/ like any other code change — a golden
# update is a semantic claim, not a formality.
set -eu

cd "$(dirname "$0")/.."

dune build

echo "== test/golden/detection_matrix.golden"
dune exec bin/cage_chaos.exe -- matrix --seed 7 \
  > test/golden/detection_matrix.golden

echo "== test/golden/served_matrix.golden"
dune exec bin/cage_chaos.exe -- served --seed 7 \
  > test/golden/served_matrix.golden

echo "== test/golden/lint.golden"
{ dune exec bin/cage_lint.exe -- examples/quickstart.c
  dune exec bin/cage_lint.exe -- --cve-suite
} > test/golden/lint.golden

echo "== test/golden/lint.json.golden"
dune exec bin/cage_lint.exe -- examples/quickstart.c --json \
  > test/golden/lint.json.golden

echo "== test/golden/metrics.golden"
dune exec bin/cage_run.exe -- examples/quickstart.c --config CAGE --seed 7 \
  --metrics > test/golden/metrics.golden 2>/dev/null || true

echo "done — review: git diff test/golden/"
