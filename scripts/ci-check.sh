#!/bin/sh
# Tier-1 CI gate: build, tests, and (when ocamlformat is installed) a
# formatting check. The fmt check is gated because the build image does
# not ship ocamlformat; .ocamlformat sets `disable = true` so that when
# it IS present, `dune build @fmt` is a no-op pass rather than a
# whole-tree reformat.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== chaos detection matrix (golden diff, seed 7)"
dune exec bin/cage_chaos.exe -- matrix --seed 7 > _build/detection_matrix.out
diff test/golden/detection_matrix.golden _build/detection_matrix.out

echo "== chaos fuzz (200 seeded programs)"
dune exec bin/cage_chaos.exe -- fuzz --count 200

echo "== cage-lint (golden diff: quickstart + CVE suite)"
{ dune exec bin/cage_lint.exe -- examples/quickstart.c
  dune exec bin/cage_lint.exe -- --cve-suite
} > _build/lint.out
diff test/golden/lint.golden _build/lint.out

echo "== check-elision differential (200 seeded programs)"
dune exec bin/cage_chaos.exe -- elidediff --count 200

echo "== full-elision differential (200 seeded programs, bounds + arena)"
dune exec bin/cage_chaos.exe -- elidediff --count 200 --full

echo "== engine differential (200 seeded programs, interp vs threaded)"
dune exec bin/cage_chaos.exe -- enginediff --count 200

echo "== detection matrix with elision (must match the golden byte-for-byte)"
dune exec bin/cage_chaos.exe -- matrix --seed 7 --elide > _build/detection_matrix_elide.out
diff test/golden/detection_matrix.golden _build/detection_matrix_elide.out

echo "== detection matrix with full elision (bounds + arena, still byte-identical)"
dune exec bin/cage_chaos.exe -- matrix --seed 7 --elide --elide-bounds \
  > _build/detection_matrix_full.out
diff test/golden/detection_matrix.golden _build/detection_matrix_full.out

echo "== cage-lint --json (golden diff, quickstart)"
dune exec bin/cage_lint.exe -- examples/quickstart.c --json > _build/lint_json.out
diff test/golden/lint.json.golden _build/lint_json.out

echo "== metrics snapshot (golden diff, quickstart seed 7)"
dune exec bin/cage_run.exe -- examples/quickstart.c --config CAGE --seed 7 \
  --metrics > _build/metrics.out 2>/dev/null || true  # guest tag fault: exit 1 by design
diff test/golden/metrics.golden _build/metrics.out

echo "== serving-path detection matrix (golden diff, seed 7)"
dune exec bin/cage_chaos.exe -- served --seed 7 > _build/served_matrix.out
diff test/golden/served_matrix.golden _build/served_matrix.out

echo "== serving-path matrix with full elision (still byte-identical)"
dune exec bin/cage_chaos.exe -- served --seed 7 --elide-bounds \
  > _build/served_matrix_full.out
diff test/golden/served_matrix.golden _build/served_matrix_full.out

echo "== serving smoke (zero escapes, all tenants >= 80% chaos-on goodput)"
dune exec bin/cage_serve.exe -- --smoke --slo-report \
  --trace-requests _build/req_trace.json \
  --json _build/BENCH_serve_smoke.json > _build/serve_smoke.out || {
  cat _build/serve_smoke.out; exit 1; }
grep -q "escaped under chaos : 0" _build/serve_smoke.out || {
  echo "FAIL: serving smoke reported escapes"; cat _build/serve_smoke.out
  exit 1; }

echo "== request observability smoke (SLO report + stitched chrome trace)"
grep -q "burn" _build/serve_smoke.out || {
  echo "FAIL: SLO report missing burn rates"; exit 1; }
grep -q "tail attribution" _build/serve_smoke.out || {
  echo "FAIL: tail-attribution table missing"; exit 1; }
grep -q "exec reconciliation: .* — exact" _build/serve_smoke.out || {
  echo "FAIL: phase attribution does not reconcile against the pool meters"
  grep "exec reconciliation" _build/serve_smoke.out || true; exit 1; }
[ -s _build/req_trace.json ] || {
  echo "FAIL: request trace not written"; exit 1; }
grep -q '"ph":"s"' _build/req_trace.json || {
  echo "FAIL: request trace has no flow arrows (span stitching broken)"
  exit 1; }

echo "== serving bench drift vs committed baseline"
scripts/bench-diff.sh _build/BENCH_serve_smoke.json \
  bench/baselines/BENCH_serve_smoke.json \
  ok:eq escaped:eq injections:eq makespan_cycles:eq \
  p99_exact_cycles:eq goodput_ratio:eq ok_per_mcycle:rel:0.001

echo "== observability overhead gate (disabled <= 2%)"
dune exec bench/main.exe -- obsoverhead > /dev/null
disabled_pct=$(sed -n 's/.*"disabled_overhead_pct": \([0-9.]*\).*/\1/p' BENCH_obsoverhead.json)
echo "   disabled_overhead_pct = ${disabled_pct}"
awk "BEGIN { exit !($disabled_pct <= 2.0) }" || {
  echo "FAIL: disabled-observability overhead ${disabled_pct}% exceeds 2%"; exit 1; }

echo "== observability bench drift vs committed baseline"
scripts/bench-diff.sh BENCH_obsoverhead.json \
  bench/baselines/BENCH_obsoverhead.json \
  ops:eq checks_per_run:eq disabled_overhead_pct:abs:2.0 \
  serve_spans_overhead_pct:abs:15.0

echo "== interprocedural analysis gate (tag writes elided > 0, full beats PR 5's 2.2%)"
dune exec bench/main.exe -- analysis > /dev/null
tw_total=$(sed -n 's/.*"tag_writes_elided_total": \([0-9]*\).*/\1/p' BENCH_analysis.json)
full_pct=$(sed -n 's/.*"mean_speedup_full_pct": \([0-9.]*\).*/\1/p' BENCH_analysis.json)
echo "   tag_writes_elided_total = ${tw_total}, mean_speedup_full_pct = ${full_pct}"
awk "BEGIN { exit !($tw_total > 0) }" || {
  echo "FAIL: no tag-plane writes elided on PolyBench"; exit 1; }
awk "BEGIN { exit !($full_pct > 2.2) }" || {
  echo "FAIL: full-elision speedup ${full_pct}% does not beat the 2.2% baseline"
  exit 1; }

echo "== analysis bench drift vs committed baseline"
scripts/bench-diff.sh BENCH_analysis.json \
  bench/baselines/BENCH_analysis.json \
  mean_tag_elided_frac:abs:0.02 mean_bounds_elided_frac:abs:0.02 \
  mean_tag_writes_elided_frac:abs:0.05 tag_writes_elided_total:rel:0.2 \
  mean_speedup_tag_pct:abs:1.0 mean_speedup_full_pct:abs:2.0

echo "== execution-engine smoke gate (threaded >= 2x interp)"
dune exec bench/main.exe -- exec > /dev/null
geomean=$(sed -n 's/.*"geomean_speedup": \([0-9.]*\).*/\1/p' BENCH_exec.json)
echo "   geomean_speedup = ${geomean}x"
awk "BEGIN { exit !($geomean >= 2.0) }" || {
  echo "FAIL: threaded engine only ${geomean}x over the interpreter"; exit 1; }

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping fmt check (ocamlformat not installed)"
fi

echo "CI checks passed."
